package obs

import (
	"math"
	"math/rand"
	"testing"

	"planck/internal/stats"
)

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<62 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histNumBuckets {
			t.Fatalf("value %d -> bucket %d out of range", v, idx)
		}
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d not in bucket %d [%d, %d]", v, idx, lo, hi)
		}
	}
	// Buckets must tile the range without gaps or overlap.
	for idx := 0; idx < histNumBuckets-1; idx++ {
		if bucketHigh(idx)+1 != bucketLow(idx+1) {
			t.Fatalf("gap after bucket %d: high %d, next low %d", idx, bucketHigh(idx), bucketLow(idx+1))
		}
	}
	// Relative bucket width is bounded by 1/histSubBuckets above the
	// exact region.
	for _, idx := range []int{100, 500, 1000, 3000} {
		lo, hi := float64(bucketLow(idx)), float64(bucketHigh(idx))
		if w := (hi - lo + 1) / lo; w > 1.0/histSubBuckets*1.01 {
			t.Fatalf("bucket %d relative width %.4f", idx, w)
		}
	}
}

// TestHistogramQuantilesAgainstSample uses stats.Sample — the exact
// order-statistic implementation the lab previously recorded latencies
// with — as the oracle: histogram quantiles must agree within the
// bucket quantization error.
func TestHistogramQuantilesAgainstSample(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform":   func(r *rand.Rand) int64 { return 50_000 + r.Int63n(200_000) },
		"lognormal": func(r *rand.Rand) int64 { return int64(math.Exp(11 + 0.6*r.NormFloat64())) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(4) == 0 {
				return 3_000_000 + r.Int63n(500_000)
			}
			return 90_000 + r.Int63n(30_000)
		},
		"constant": func(r *rand.Rand) int64 { return 123_456 },
	}
	for name, gen := range distributions {
		r := rand.New(rand.NewSource(7))
		h := NewHistogram()
		oracle := &stats.Sample{}
		for i := 0; i < 20_000; i++ {
			v := gen(r)
			h.Observe(v)
			oracle.Add(float64(v))
		}
		if h.N() != oracle.N() {
			t.Fatalf("%s: N %d vs %d", name, h.N(), oracle.N())
		}
		if got, want := h.Mean(), oracle.Mean(); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%s: mean %.1f vs %.1f (must be exact)", name, got, want)
		}
		if got, want := h.Min(), oracle.Min(); got != want {
			t.Errorf("%s: min %.1f vs %.1f", name, got, want)
		}
		if got, want := h.Max(), oracle.Max(); got != want {
			t.Errorf("%s: max %.1f vs %.1f", name, got, want)
		}
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			got, want := h.Quantile(q), oracle.Quantile(q)
			// Bucket width bounds the error at 1/64 ≈ 1.6%; allow 2.5%
			// to absorb interpolation differences at distribution edges.
			if want > 0 && math.Abs(got-want)/want > 0.025 {
				t.Errorf("%s: q%.3f = %.1f, oracle %.1f (%.2f%% off)",
					name, q, got, want, 100*math.Abs(got-want)/want)
			}
		}
	}
}

func TestHistogramScale(t *testing.T) {
	// Record nanoseconds, report microseconds — the lab latency setup.
	h := NewScaledHistogram(1e-3)
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 1000) // 1..100 µs in ns
	}
	if med := h.Median(); med < 49 || med > 52 {
		t.Fatalf("median %.2f µs, want ≈50.5", med)
	}
	if mx := h.Max(); mx != 100 {
		t.Fatalf("max %.2f µs, want 100", mx)
	}
	if s := h.Sum(); math.Abs(s-5050) > 1e-6 {
		t.Fatalf("sum %.2f µs, want 5050", s)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.N() != 0 || h.Median() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read as zeros")
	}
	h.Observe(-5) // clamps to 0
	if h.N() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation: N=%d min=%g max=%g", h.N(), h.Min(), h.Max())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost increments")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*7919 + 100)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100_000; i++ {
		h.Observe(int64(i)*31 + 50_000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
