package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

var (
	testKey = packet.FlowKey{
		SrcIP: packet.IPv4{10, 0, 0, 1}, DstIP: packet.IPv4{10, 0, 0, 9},
		SrcPort: 1000, DstPort: 5001, Proto: packet.IPProtocolTCP,
	}
	testMAC = packet.MAC{2, 9, 0, 0, 0, 3}
)

// driveFullLoop walks one span through every stage with strictly
// increasing timestamps and returns its ID.
func driveFullLoop(tr *Tracer, base units.Time) uint64 {
	id := tr.NextID()
	tr.Begin(id, base.Add(200*units.Microsecond), "sw0", 2, 1, 9*units.Gbps, 10*units.Gbps)
	tr.StampCapture(base) // back-date SampleAt to the capture time
	tr.MarkQueued(id, base.Add(300*units.Microsecond))
	tr.RecordRetry(id, 500*units.Microsecond)
	tr.MarkDelivered(id, base.Add(900*units.Microsecond))
	tr.MarkDecided(id, base.Add(1000*units.Microsecond), Decision{
		EpochNew: 2, ViaARP: false, Flow: testKey, NewMAC: testMAC,
		SrcHost: 1, DstHost: 9, Tree: 3, Changes: 2,
	})
	tr.MarkActuated(id, base.Add(3*units.Millisecond))
	tr.MarkActuated(id, base.Add(3200*units.Microsecond))
	tr.NoteResolve(base.Add(5*units.Millisecond), testKey, testMAC, 2)
	return id
}

func TestFullLoopConverges(t *testing.T) {
	tr := New(16)
	id := driveFullLoop(tr, units.Time(units.Millisecond))

	if n := tr.ActiveCount(); n != 0 {
		t.Fatalf("ActiveCount = %d after convergence", n)
	}
	spans := tr.Recorder().Snapshot()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.ID != id || s.Outcome != OutcomeConverged {
		t.Fatalf("span %+v, want id %d converged", s, id)
	}
	if !s.Complete() {
		t.Fatalf("converged span incomplete: %+v", s)
	}
	if s.SampleAt != units.Time(units.Millisecond) {
		t.Errorf("SampleAt = %v, want the capture time", s.SampleAt)
	}
	if s.EpochOld != 1 || s.EpochNew != 2 {
		t.Errorf("epochs %d→%d, want 1→2", s.EpochOld, s.EpochNew)
	}
	if s.Retries != 1 || s.BackoffTotal != 500*units.Microsecond {
		t.Errorf("retries %d backoff %v, want 1 / 500µs", s.Retries, s.BackoffTotal)
	}
	if s.Actuations != 2 {
		t.Errorf("actuations = %d, want 2", s.Actuations)
	}

	// The per-stage durations must sum exactly to the total wall time.
	var sum units.Duration
	for _, d := range s.Breakdown() {
		if d < 0 {
			t.Fatalf("negative stage duration in %v", s.Breakdown())
		}
		sum += d
	}
	if sum != s.Total() {
		t.Errorf("stage sum %v != total %v", sum, s.Total())
	}
	if want := 5 * units.Millisecond; s.Total() != want {
		t.Errorf("total = %v, want %v (capture 1ms → converge 6ms)", s.Total(), want)
	}
	if tr.Converged.Value() != 1 || tr.Completed.Value() != 1 {
		t.Errorf("counters converged=%d completed=%d, want 1/1",
			tr.Converged.Value(), tr.Completed.Value())
	}
}

func TestClampKeepsStagesMonotone(t *testing.T) {
	tr := New(16)
	id := tr.NextID()
	// The lab stamps samples tick+overhead, so the event's nominal time
	// can exceed the engine time later marks run at.
	tr.Begin(id, units.Time(10*units.Millisecond), "sw0", 1, 1, 9*units.Gbps, 10*units.Gbps)
	tr.MarkQueued(id, units.Time(9*units.Millisecond))    // before detection
	tr.MarkDelivered(id, units.Time(8*units.Millisecond)) // before queue
	tr.MarkDecided(id, units.Time(7*units.Millisecond), Decision{
		EpochNew: 2, Flow: testKey, NewMAC: testMAC, Changes: 1,
	})
	tr.MarkActuated(id, units.Time(6*units.Millisecond))
	tr.NoteResolve(units.Time(5*units.Millisecond), testKey, testMAC, 2)

	spans := tr.Recorder().Snapshot()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	ends := []units.Time{s.SampleAt, s.DetectAt, s.QueuedAt, s.DeliveredAt,
		s.DecidedAt, s.ActuatedAt, s.ConvergedAt}
	for i := 1; i < len(ends); i++ {
		if ends[i] < ends[i-1] {
			t.Fatalf("stage %d timestamp %v precedes %v; marks must clamp monotone",
				i, ends[i], ends[i-1])
		}
	}
}

func TestOutcomes(t *testing.T) {
	tr := New(16)

	// No subscriber committed a reroute.
	noRR := tr.NextID()
	tr.Begin(noRR, 1000, "sw0", 0, 1, 9*units.Gbps, 10*units.Gbps)
	tr.MarkDelivered(noRR, 2000)
	tr.FinishCause(noRR)

	// Reroute onto the tree already ridden: empty diff.
	noCh := tr.NextID()
	tr.Begin(noCh, 3000, "sw0", 0, 1, 9*units.Gbps, 10*units.Gbps)
	tr.MarkDelivered(noCh, 4000)
	if tr.MarkDecided(noCh, 5000, Decision{EpochNew: 2, Changes: 0}) {
		t.Error("MarkDecided claimed a no-op commit")
	}

	// Supervisor drops.
	stale := tr.NextID()
	tr.Begin(stale, 6000, "sw0", 0, 1, 9*units.Gbps, 10*units.Gbps)
	tr.Drop(stale, OutcomeDroppedStale)
	dup := tr.NextID()
	tr.Begin(dup, 7000, "sw0", 0, 1, 9*units.Gbps, 10*units.Gbps)
	tr.Drop(dup, OutcomeDroppedDuplicate)

	// End-of-run flush.
	open := tr.NextID()
	tr.Begin(open, 8000, "sw0", 0, 1, 9*units.Gbps, 10*units.Gbps)
	tr.FlushOpen()

	want := map[uint64]Outcome{
		noRR: OutcomeNoReroute, noCh: OutcomeNoChange,
		stale: OutcomeDroppedStale, dup: OutcomeDroppedDuplicate,
		open: OutcomeOrphaned,
	}
	for _, s := range tr.Recorder().Snapshot() {
		if s.Outcome != want[s.ID] {
			t.Errorf("span %d outcome %v, want %v", s.ID, s.Outcome, want[s.ID])
		}
	}
	counts := tr.OutcomeCounts()
	for _, o := range []Outcome{OutcomeNoReroute, OutcomeNoChange,
		OutcomeDroppedStale, OutcomeDroppedDuplicate, OutcomeOrphaned} {
		if counts[o] != 1 {
			t.Errorf("OutcomeCounts[%v] = %d, want 1", o, counts[o])
		}
	}
	if tr.ActiveCount() != 0 {
		t.Errorf("%d spans still active", tr.ActiveCount())
	}
}

func TestWatchMatching(t *testing.T) {
	arm := func(viaARP bool) *Tracer {
		tr := New(16)
		id := tr.NextID()
		tr.Begin(id, 1000, "sw0", 2, 1, 9*units.Gbps, 10*units.Gbps)
		tr.MarkDelivered(id, 2000)
		tr.MarkDecided(id, 3000, Decision{
			EpochNew: 2, ViaARP: viaARP, Flow: testKey, NewMAC: testMAC, Changes: 1,
		})
		return tr
	}
	converged := func(tr *Tracer) bool { return tr.Converged.Value() == 1 }

	// Old epoch: in-flight pre-reroute sample must not converge the span.
	tr := arm(false)
	tr.NoteResolve(4000, testKey, testMAC, 1)
	if converged(tr) {
		t.Error("converged on a sample resolved through the old epoch")
	}
	// Old label through the new epoch: still the old path.
	tr.NoteResolve(5000, testKey, packet.MAC{2, 0, 0, 0, 0, 9}, 2)
	if converged(tr) {
		t.Error("converged on the old shadow-MAC label")
	}
	// Different flow entirely.
	other := testKey
	other.DstPort = 9999
	tr.NoteResolve(6000, other, testMAC, 2)
	if converged(tr) {
		t.Error("converged on an unrelated flow")
	}
	// The real signal.
	tr.NoteResolve(7000, testKey, testMAC, 2)
	if !converged(tr) {
		t.Error("did not converge on new epoch + new label + matching flow")
	}

	// ARP (pair) moves match on the IP pair only: any port pair of the
	// moved src/dst converges the span.
	tr = arm(true)
	pairSample := testKey
	pairSample.SrcPort, pairSample.DstPort = 31000, 80
	tr.NoteResolve(4000, pairSample, testMAC, 2)
	if !converged(tr) {
		t.Error("ARP watch did not match on the IP pair")
	}
}

func TestRingWrapKeepsConvergedSpans(t *testing.T) {
	tr := New(8)
	convID := driveFullLoop(tr, units.Time(units.Millisecond))

	// Wrap the 8-slot main ring with no-reroute spans.
	for i := 0; i < 20; i++ {
		id := tr.NextID()
		tr.Begin(id, units.Time(i)*1000+10000, "sw0", 0, 1, 9*units.Gbps, 10*units.Gbps)
		tr.MarkDelivered(id, units.Time(i)*1000+11000)
		tr.FinishCause(id)
	}

	for _, s := range tr.Recorder().Snapshot() {
		if s.ID == convID {
			t.Fatal("main ring should have wrapped past the converged span")
		}
	}
	conv := tr.ConvergedSpans()
	if len(conv) != 1 || conv[0].ID != convID {
		t.Fatalf("ConvergedSpans = %+v, want the wrapped span %d", conv, convID)
	}
	if got := tr.OutcomeCounts()[OutcomeNoReroute]; got != 20 {
		t.Errorf("no-reroute count = %d, want 20 (must survive ring wrap)", got)
	}
}

func TestIdleNoteResolveFastPath(t *testing.T) {
	tr := New(16)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.NoteResolve(1000, testKey, testMAC, 5)
	})
	if allocs != 0 {
		t.Errorf("idle NoteResolve allocates %.1f/op, want 0", allocs)
	}
}

func TestActiveTableEviction(t *testing.T) {
	tr := New(16)
	for i := 0; i < maxActive+10; i++ {
		id := tr.NextID()
		tr.Begin(id, units.Time(i+1)*1000, "sw0", 0, 1, 9*units.Gbps, 10*units.Gbps)
	}
	if n := tr.ActiveCount(); n > maxActive {
		t.Fatalf("ActiveCount = %d, exceeds maxActive %d", n, maxActive)
	}
	if got := tr.OutcomeCounts()[OutcomeOrphaned]; got != 10 {
		t.Errorf("orphaned = %d, want 10 evictions", got)
	}
}

func TestWriteJSONAndBreakdown(t *testing.T) {
	tr := New(16)
	driveFullLoop(tr, units.Time(units.Millisecond))

	var buf bytes.Buffer
	if err := tr.Recorder().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(spans) != 1 || spans[0]["outcome"] != "converged" {
		t.Fatalf("JSON spans = %+v", spans)
	}

	buf.Reset()
	tr.WriteBreakdown(&buf)
	out := buf.String()
	for _, want := range []string{"1 converged", "detection", "convergence", "stage sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}
