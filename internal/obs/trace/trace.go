// Package trace provides causal control-loop spans: one span follows a
// congestion event from the triggering sample through detection,
// supervisor queueing, retried delivery, the controller's decision
// (routing.Store.Commit), per-switch actuation, and finally
// re-convergence — the first sample the collector resolves through the
// new routing epoch under the moved flow's new label. The per-stage
// durations reproduce the paper's Fig. 10 latency breakdown for every
// individual reroute instead of only in aggregate.
//
// The tracer is deliberately off the sample hot path: collectors touch
// it only when a rate-estimation window closes AND a congestion event
// actually fires (checkCongestion), plus one branch + one atomic load
// in remapFlowAt, which itself only runs on label/epoch changes. With a
// tracer attached but no event in flight, ingest performs zero
// allocations and no locked operations — the planck-bench -trace-json
// self-gate pins this down.
//
// Completed spans land in a fixed-size lock-free flight-recorder ring
// (recorder.go) and feed per-stage obs histograms for /debug/traces/summary.
package trace

import (
	"sync"
	"sync/atomic"

	"planck/internal/obs"
	"planck/internal/packet"
	"planck/internal/units"
)

// Outcome classifies how a span ended.
type Outcome uint8

// Outcomes.
const (
	// OutcomeActive marks a span still in flight (never recorded).
	OutcomeActive Outcome = iota
	// OutcomeConverged is the full control loop: the collector resolved
	// a sample of the moved traffic through the new epoch and label.
	OutcomeConverged
	// OutcomeNoReroute means the event was delivered but no subscriber
	// committed a route change (TE judged the placement already best).
	OutcomeNoReroute
	// OutcomeNoChange means a reroute was requested onto the tree the
	// traffic already rides: the commit diffed empty, nothing actuated.
	OutcomeNoChange
	// OutcomeDroppedStale means a dead collector generation emitted the
	// event and the supervisor discarded it.
	OutcomeDroppedStale
	// OutcomeDroppedDuplicate means the supervisor's cross-restart
	// cooldown dedup suppressed the event.
	OutcomeDroppedDuplicate
	// OutcomeAbandoned means delivery gave up (MaxAttempts exceeded or
	// the deliverer was cancelled).
	OutcomeAbandoned
	// OutcomeOrphaned means the run ended (or the active table
	// overflowed) before the span could complete.
	OutcomeOrphaned

	outcomeCount // number of outcomes, sizing per-outcome counters
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeActive:
		return "active"
	case OutcomeConverged:
		return "converged"
	case OutcomeNoReroute:
		return "no-reroute"
	case OutcomeNoChange:
		return "no-change"
	case OutcomeDroppedStale:
		return "dropped-stale"
	case OutcomeDroppedDuplicate:
		return "dropped-duplicate"
	case OutcomeAbandoned:
		return "abandoned"
	case OutcomeOrphaned:
		return "orphaned"
	}
	return "unknown"
}

// NumStages is the number of per-stage durations in a breakdown.
const NumStages = 6

// StageNames labels Span.Breakdown's entries, matching Fig. 10's
// components (see DESIGN.md §3.5 for the mapping).
var StageNames = [NumStages]string{
	"detection", "queue", "delivery", "decision", "actuation", "convergence",
}

// Span is one control-loop trace. Timestamps are absolute simulation
// (or wall) times; a zero timestamp means the stage was never reached.
// Stage order: SampleAt ≤ DetectAt ≤ QueuedAt ≤ DeliveredAt ≤
// DecidedAt ≤ ActuatedAt ≤ ConvergedAt (marks are clamped monotone on
// entry, so the inequality holds for every recorded span).
type Span struct {
	// ID is the monotonically assigned event ID (CongestionEvent.ID).
	ID uint64
	// Switch and Port identify the congested link that fired the event.
	Switch string
	Port   int
	// Util and Capacity snapshot the triggering utilization estimate.
	Util, Capacity units.Rate
	// EpochOld is the routing epoch the triggering sample resolved
	// through; EpochNew is the epoch the controller's commit published
	// (zero until decided).
	EpochOld, EpochNew uint64

	// SampleAt is the capture timestamp of the triggering poll batch's
	// earliest sample; DetectAt is when the collector emitted the event.
	SampleAt units.Time
	DetectAt units.Time
	// QueuedAt is when the supervisor dequeued the event for delivery
	// (equals DeliveredAt on the direct-attached path).
	QueuedAt units.Time
	// DeliveredAt is when Controller.DeliverEvent accepted the event.
	DeliveredAt units.Time
	// DecidedAt is when the controller committed the new routing epoch.
	DecidedAt units.Time
	// ActuatedAt is when the last diff entry was applied to the data
	// plane (spoofed ARP landed / rewrite rule installed).
	ActuatedAt units.Time
	// ConvergedAt is the timestamp of the first sample resolved through
	// the new epoch under the moved traffic's new label.
	ConvergedAt units.Time

	// Retries counts delivery re-sends; BackoffTotal sums their delays.
	Retries      int
	BackoffTotal units.Duration
	// Actuations counts applied diff entries.
	Actuations int
	// ViaARP distinguishes the pair-override (ARP) mechanism from the
	// per-flow OpenFlow rewrite.
	ViaARP bool
	// SrcHost, DstHost, Tree describe the decided move.
	SrcHost, DstHost, Tree int

	Outcome Outcome

	// Convergence-watch state (internal).
	watchArmed bool
	watchKey   packet.FlowKey
	watchMAC   packet.MAC
	watchEpoch uint64
	actLeft    int
}

// stageEnds lists the stage-boundary timestamps in causal order,
// starting at SampleAt.
func (s *Span) stageEnds() [NumStages + 1]units.Time {
	return [NumStages + 1]units.Time{
		s.SampleAt, s.DetectAt, s.QueuedAt, s.DeliveredAt,
		s.DecidedAt, s.ActuatedAt, s.ConvergedAt,
	}
}

// Breakdown returns the per-stage durations {detection, queue,
// delivery, decision, actuation, convergence}. Stages never reached
// (timestamp zero) and everything after them report zero.
func (s *Span) Breakdown() [NumStages]units.Duration {
	var out [NumStages]units.Duration
	ends := s.stageEnds()
	prev := ends[0]
	for i := 1; i < len(ends); i++ {
		if ends[i] == 0 || prev == 0 {
			break
		}
		out[i-1] = ends[i].Sub(prev)
		prev = ends[i]
	}
	return out
}

// Total is the detection→convergence wall time for converged spans,
// and SampleAt→last-reached-stage otherwise.
func (s *Span) Total() units.Duration {
	ends := s.stageEnds()
	last := ends[0]
	for _, t := range ends[1:] {
		if t != 0 {
			last = t
		}
	}
	if s.SampleAt == 0 {
		return 0
	}
	return last.Sub(s.SampleAt)
}

// Complete reports whether every stage of the span was reached.
func (s *Span) Complete() bool {
	for _, t := range s.stageEnds() {
		if t == 0 {
			return false
		}
	}
	return true
}

// Decision carries everything the tracer needs from a controller
// commit: the published epoch, the move, and the convergence-watch key.
type Decision struct {
	EpochNew uint64
	ViaARP   bool
	// Flow is the moved flow's 5-tuple for OpenFlow moves; for ARP
	// (pair) moves only SrcIP/DstIP are matched.
	Flow packet.FlowKey
	// NewMAC is the shadow-MAC label of (DstHost, Tree) — the label
	// moved traffic carries once the actuation lands, and therefore the
	// convergence signal.
	NewMAC                 packet.MAC
	SrcHost, DstHost, Tree int
	// Changes is the snapshot diff size (0 ⇒ no-op commit).
	Changes int
}

// maxActive bounds the open-span table; congestion events are rare
// (cooldown-limited per link), so overflow means leaked spans — the
// oldest is evicted as orphaned.
const maxActive = 1024

// Tracer assigns event IDs and tracks open spans. All mark methods are
// mutex-guarded and safe from any goroutine; they run only on the
// event path (one congestion event per link per cooldown at most),
// never per sample. NoteResolve — the only method reachable from the
// ingest path — is guarded by a single atomic watch count so it is one
// load when no convergence watch is armed.
type Tracer struct {
	nextID  atomic.Uint64
	watches atomic.Int32

	mu     sync.Mutex
	active map[uint64]*Span
	// born holds spans begun since the last StampCapture call, awaiting
	// the poll batch's capture timestamp.
	born []*Span

	rec *Recorder
	// conv retains converged spans separately: the main ring wraps
	// under a steady stream of no-reroute events, and the rare spans
	// that completed the full loop are exactly the ones worth keeping.
	conv *Recorder
	// outcomes counts every completed span by outcome; unlike the ring
	// contents these totals survive wraps. Guarded by mu.
	outcomes [outcomeCount]uint64

	// Per-stage duration histograms (µs) over converged spans, backing
	// /debug/traces/summary.
	stageHist [NumStages]*obs.Histogram
	totalHist *obs.Histogram

	// Completed and Converged count recorded spans.
	Completed obs.Counter
	Converged obs.Counter

	registered atomic.Bool
}

// New builds a tracer with a flight recorder retaining the last
// ringSize completed spans (rounded up to a power of two; 0 = 256).
func New(ringSize int) *Tracer {
	tr := &Tracer{
		active: make(map[uint64]*Span),
		rec:    NewRecorder(ringSize),
		conv:   NewRecorder(64),
	}
	for i := range tr.stageHist {
		tr.stageHist[i] = obs.NewScaledHistogram(1e-3) // ns → µs
	}
	tr.totalHist = obs.NewScaledHistogram(1e-3)
	return tr
}

// Recorder exposes the flight-recorder ring.
func (tr *Tracer) Recorder() *Recorder { return tr.rec }

// NextID allocates the next event ID (IDs start at 1; 0 means
// untraced). Collectors call this exactly once per emitted event, so
// serial and sharded pipelines assign identical ID streams: the serial
// collector assigns at each synchronous emit, the sharded merger at the
// same point of the replayed in-order stream.
func (tr *Tracer) NextID() uint64 { return tr.nextID.Add(1) }

// Begin opens a span for event id: the collector detected congestion on
// (switchName, port) at time t, with the triggering flow resolved
// through epochOld. SampleAt is provisionally t until StampCapture
// supplies the poll batch's capture timestamp.
func (tr *Tracer) Begin(id uint64, t units.Time, switchName string, port int, epochOld uint64, util, capacity units.Rate) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.active[id]; ok {
		return
	}
	if len(tr.active) >= maxActive {
		tr.evictOldestLocked()
	}
	s := &Span{
		ID: id, Switch: switchName, Port: port,
		Util: util, Capacity: capacity,
		EpochOld: epochOld,
		SampleAt: t, DetectAt: t,
	}
	tr.active[id] = s
	tr.born = append(tr.born, s)
}

// evictOldestLocked completes the span with the earliest detection time
// as orphaned. Callers hold tr.mu.
func (tr *Tracer) evictOldestLocked() {
	var oldest *Span
	for _, s := range tr.active {
		if oldest == nil || s.DetectAt < oldest.DetectAt {
			oldest = s
		}
	}
	if oldest != nil {
		tr.completeLocked(oldest, OutcomeOrphaned)
	}
}

// StampCapture back-dates the SampleAt of every span begun since the
// previous call to captureAt — the earliest send timestamp in the poll
// batch whose ingest fired those events. The capture stack (lab
// CollectorNode) calls it once per delivered batch; callers without
// capture information simply never call it and SampleAt stays at
// detection time.
func (tr *Tracer) StampCapture(captureAt units.Time) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, s := range tr.born {
		if captureAt > 0 && captureAt < s.DetectAt {
			s.SampleAt = captureAt
		}
	}
	tr.born = tr.born[:0]
}

// clamp returns t, floored to prev so stage timestamps stay monotone
// (the lab stamps samples "tick + overhead", so an event's nominal time
// can exceed the engine time it is drained at).
func clamp(prev, t units.Time) units.Time {
	if t < prev {
		return prev
	}
	return t
}

// MarkQueued records the supervisor dequeuing event id for delivery.
func (tr *Tracer) MarkQueued(id uint64, t units.Time) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := tr.active[id]
	if s == nil || s.QueuedAt != 0 {
		return
	}
	s.QueuedAt = clamp(s.DetectAt, t)
}

// RecordRetry records one delivery re-send of event id after backoff.
func (tr *Tracer) RecordRetry(id uint64, backoff units.Duration) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if s := tr.active[id]; s != nil {
		s.Retries++
		s.BackoffTotal += backoff
	}
}

// MarkDelivered records the controller accepting event id. Idempotent:
// a retried event that raced a successful send marks once. On the
// direct-attached path (no supervisor) QueuedAt backfills to the
// delivery time, making the queue stage zero rather than unmeasured.
func (tr *Tracer) MarkDelivered(id uint64, t units.Time) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := tr.active[id]
	if s == nil || s.DeliveredAt != 0 {
		return
	}
	if s.QueuedAt == 0 {
		s.QueuedAt = clamp(s.DetectAt, t)
	}
	s.DeliveredAt = clamp(s.QueuedAt, t)
}

// MarkDecided records the controller's route commit for event id and
// arms the convergence watch. Only the first decision claims the span
// (one event can trigger several reroutes; the span follows the
// first). Returns whether this call claimed it — the caller wraps its
// actuation callbacks with MarkActuated only when true. A no-op commit
// (dec.Changes == 0) completes the span immediately as no-change.
func (tr *Tracer) MarkDecided(id uint64, t units.Time, dec Decision) bool {
	if id == 0 {
		return false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := tr.active[id]
	if s == nil || s.DecidedAt != 0 {
		return false
	}
	if s.DeliveredAt == 0 {
		// Direct-attached collectors deliver synchronously inside the
		// event callback; backfill so stage order is preserved.
		if s.QueuedAt == 0 {
			s.QueuedAt = clamp(s.DetectAt, t)
		}
		s.DeliveredAt = clamp(s.QueuedAt, t)
	}
	s.DecidedAt = clamp(s.DeliveredAt, t)
	s.EpochNew = dec.EpochNew
	s.ViaARP = dec.ViaARP
	s.SrcHost, s.DstHost, s.Tree = dec.SrcHost, dec.DstHost, dec.Tree
	if dec.Changes == 0 {
		tr.completeLocked(s, OutcomeNoChange)
		return false
	}
	s.actLeft = dec.Changes
	s.watchArmed = true
	s.watchKey = dec.Flow
	s.watchMAC = dec.NewMAC
	s.watchEpoch = dec.EpochNew
	tr.watches.Add(1)
	return true
}

// MarkActuated records one applied diff entry for event id; the last
// one stamps ActuatedAt.
func (tr *Tracer) MarkActuated(id uint64, t units.Time) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := tr.active[id]
	if s == nil {
		return
	}
	s.Actuations++
	if s.actLeft > 0 {
		s.actLeft--
	}
	if s.actLeft == 0 && s.ActuatedAt == 0 {
		s.ActuatedAt = clamp(s.DecidedAt, t)
	}
}

// NoteResolve is the convergence probe, called from the collector's
// remapFlowAt whenever a flow's egress resolution changes: if any
// armed watch matches — the sample resolved through (at least) the
// decided epoch AND carries the moved traffic's new shadow-MAC label
// AND belongs to the moved flow (5-tuple for OpenFlow, src/dst IP pair
// for ARP) — the span converges at t. The watch-count fast path keeps
// this one atomic load when nothing is armed.
func (tr *Tracer) NoteResolve(t units.Time, key packet.FlowKey, dstMAC packet.MAC, epoch uint64) {
	if tr.watches.Load() == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, s := range tr.active {
		if !s.watchArmed || epoch < s.watchEpoch || dstMAC != s.watchMAC {
			continue
		}
		if s.ViaARP {
			if key.SrcIP != s.watchKey.SrcIP || key.DstIP != s.watchKey.DstIP {
				continue
			}
		} else if key != s.watchKey {
			continue
		}
		if s.ActuatedAt == 0 {
			// An actuation callback can still be pending when the first
			// post-reroute sample lands; account it to the decision time.
			s.ActuatedAt = s.DecidedAt
		}
		s.ConvergedAt = clamp(s.ActuatedAt, t)
		tr.completeLocked(s, OutcomeConverged)
	}
}

// MarkConverged completes span id as converged at time t without a
// flow-watch match — the out-of-band convergence signal for actuations
// whose effect is not a relabeled flow. Mirror-config commits converge
// this way: the governor calls it when the estimator confirms the
// monitor feed recovered after a shed/tune landed. A span that never
// decided is left open (there is nothing to converge to yet).
func (tr *Tracer) MarkConverged(id uint64, t units.Time) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := tr.active[id]
	if s == nil || s.DecidedAt == 0 {
		return
	}
	if s.ActuatedAt == 0 {
		// An actuation callback can still be pending; account the
		// remainder to the decision time, as NoteResolve does.
		s.ActuatedAt = s.DecidedAt
	}
	s.ConvergedAt = clamp(s.ActuatedAt, t)
	tr.completeLocked(s, OutcomeConverged)
}

// Drop completes span id with a terminal non-converged outcome
// (supervisor stale/duplicate suppression, delivery abandonment).
func (tr *Tracer) Drop(id uint64, outcome Outcome) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if s := tr.active[id]; s != nil {
		tr.completeLocked(s, outcome)
	}
}

// FinishCause closes span id as no-reroute if the controller fanned the
// event out and no subscriber committed a route change.
func (tr *Tracer) FinishCause(id uint64) {
	if id == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := tr.active[id]
	if s == nil || s.DecidedAt != 0 {
		return
	}
	tr.completeLocked(s, OutcomeNoReroute)
}

// FlushOpen completes every still-open span as orphaned (end of run).
func (tr *Tracer) FlushOpen() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, s := range tr.active {
		tr.completeLocked(s, OutcomeOrphaned)
	}
}

// ActiveCount reports open spans (diagnostics).
func (tr *Tracer) ActiveCount() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.active)
}

// completeLocked stamps the outcome, retires the span from the active
// table (and its watch), pushes a copy into the flight recorder, and
// feeds the stage histograms for converged spans. Callers hold tr.mu.
func (tr *Tracer) completeLocked(s *Span, outcome Outcome) {
	s.Outcome = outcome
	delete(tr.active, s.ID)
	for i, b := range tr.born {
		if b == s {
			tr.born = append(tr.born[:i], tr.born[i+1:]...)
			break
		}
	}
	if s.watchArmed {
		s.watchArmed = false
		tr.watches.Add(-1)
	}
	cp := *s
	tr.rec.put(&cp)
	tr.outcomes[outcome]++
	tr.Completed.Inc()
	if outcome == OutcomeConverged {
		tr.conv.put(&cp)
		tr.Converged.Inc()
		bd := s.Breakdown()
		for i, d := range bd {
			tr.stageHist[i].Observe(int64(d))
		}
		tr.totalHist.Observe(int64(s.Total()))
	}
}

// OutcomeCounts returns how many completed spans ended with each
// outcome since the tracer was built; totals survive ring wraps.
func (tr *Tracer) OutcomeCounts() [outcomeCount]uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.outcomes
}

// ConvergedSpans returns the retained converged spans, oldest first.
func (tr *Tracer) ConvergedSpans() []Span { return tr.conv.Snapshot() }

// RegisterMetrics exposes the tracer's histograms and counters on reg
// and mounts the /debug/traces endpoints on its HTTP mux. Idempotent
// across calls on the same tracer (the first registry wins), so a
// shared tracer can outlive lab rebuilds.
func (tr *Tracer) RegisterMetrics(reg *obs.Registry) {
	if !tr.registered.CompareAndSwap(false, true) {
		return
	}
	for i, h := range tr.stageHist {
		reg.MustRegister("planck_trace_stage_us", h, obs.Label("stage", StageNames[i]))
	}
	reg.MustRegister("planck_trace_total_us", tr.totalHist)
	reg.MustRegister("planck_trace_completed_total", &tr.Completed)
	reg.MustRegister("planck_trace_converged_total", &tr.Converged)
	reg.Handle("/debug/traces", tr.TracesHandler())
	reg.Handle("/debug/traces/summary", tr.SummaryHandler())
}
