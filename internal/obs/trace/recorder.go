package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"

	"planck/internal/units"
)

// Recorder is the flight-recorder ring: a fixed-size, lock-free buffer
// of the most recently completed spans. Writers publish finished span
// copies with an atomic cursor; readers snapshot by loading slot
// pointers, so scrapes never block the event path.
type Recorder struct {
	slots  []atomic.Pointer[Span]
	cursor atomic.Uint64
}

// NewRecorder builds a ring retaining size spans (rounded up to a
// power of two; 0 = 256).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = 256
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Span], n)}
}

// Cap is the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// put publishes one completed span (the caller passes an exclusively
// owned copy).
func (r *Recorder) put(s *Span) {
	idx := (r.cursor.Add(1) - 1) & uint64(len(r.slots)-1)
	r.slots[idx].Store(s)
}

// Snapshot returns the retained spans, oldest first.
func (r *Recorder) Snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	cur := r.cursor.Load()
	for i := 0; i < len(r.slots); i++ {
		idx := (cur + uint64(i)) & uint64(len(r.slots)-1)
		if s := r.slots[idx].Load(); s != nil {
			out = append(out, *s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// spanJSON is the wire form of one span.
type spanJSON struct {
	ID       uint64 `json:"id"`
	Switch   string `json:"switch"`
	Port     int    `json:"port"`
	Outcome  string `json:"outcome"`
	ViaARP   bool   `json:"via_arp"`
	EpochOld uint64 `json:"epoch_old"`
	EpochNew uint64 `json:"epoch_new"`
	SrcHost  int    `json:"src_host"`
	DstHost  int    `json:"dst_host"`
	Tree     int    `json:"tree"`
	Retries  int    `json:"retries"`
	Acts     int    `json:"actuations"`

	SampleAtNs    int64 `json:"sample_at_ns"`
	DetectAtNs    int64 `json:"detect_at_ns"`
	QueuedAtNs    int64 `json:"queued_at_ns"`
	DeliveredAtNs int64 `json:"delivered_at_ns"`
	DecidedAtNs   int64 `json:"decided_at_ns"`
	ActuatedAtNs  int64 `json:"actuated_at_ns"`
	ConvergedAtNs int64 `json:"converged_at_ns"`

	StagesUs map[string]float64 `json:"stages_us"`
	TotalUs  float64            `json:"total_us"`
}

func toJSON(s *Span) spanJSON {
	bd := s.Breakdown()
	stages := make(map[string]float64, NumStages)
	for i, d := range bd {
		stages[StageNames[i]] = d.Microseconds()
	}
	return spanJSON{
		ID: s.ID, Switch: s.Switch, Port: s.Port,
		Outcome: s.Outcome.String(), ViaARP: s.ViaARP,
		EpochOld: s.EpochOld, EpochNew: s.EpochNew,
		SrcHost: s.SrcHost, DstHost: s.DstHost, Tree: s.Tree,
		Retries: s.Retries, Acts: s.Actuations,
		SampleAtNs:    int64(s.SampleAt),
		DetectAtNs:    int64(s.DetectAt),
		QueuedAtNs:    int64(s.QueuedAt),
		DeliveredAtNs: int64(s.DeliveredAt),
		DecidedAtNs:   int64(s.DecidedAt),
		ActuatedAtNs:  int64(s.ActuatedAt),
		ConvergedAtNs: int64(s.ConvergedAt),
		StagesUs:      stages,
		TotalUs:       s.Total().Microseconds(),
	}
}

// WriteJSON dumps the flight recorder's retained spans as a JSON array,
// oldest first.
func (r *Recorder) WriteJSON(w io.Writer) error {
	spans := r.Snapshot()
	out := make([]spanJSON, len(spans))
	for i := range spans {
		out[i] = toJSON(&spans[i])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// TracesHandler serves the flight recorder as JSON (/debug/traces).
func (tr *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr.rec.WriteJSON(w)
	})
}

// stageSummary is one stage's percentile summary.
type stageSummary struct {
	Count int64   `json:"count"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

func summarize(h interface {
	N() int
	Quantile(float64) float64
	Max() float64
}) stageSummary {
	s := stageSummary{Count: int64(h.N())}
	if s.Count > 0 {
		s.P50Us = h.Quantile(0.5)
		s.P99Us = h.Quantile(0.99)
		s.MaxUs = h.Max()
	}
	return s
}

// SummaryHandler serves per-stage p50/p99 over converged spans plus
// outcome counts (/debug/traces/summary).
func (tr *Tracer) SummaryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		type summary struct {
			Active    int                     `json:"active"`
			Completed int64                   `json:"completed"`
			Converged int64                   `json:"converged"`
			Outcomes  map[string]int          `json:"outcomes"`
			Stages    map[string]stageSummary `json:"stages_us"`
			Total     stageSummary            `json:"total_us"`
		}
		out := summary{
			Active:    tr.ActiveCount(),
			Completed: tr.Completed.Value(),
			Converged: tr.Converged.Value(),
			Outcomes:  make(map[string]int),
			Stages:    make(map[string]stageSummary, NumStages),
		}
		for o, n := range tr.OutcomeCounts() {
			if n > 0 {
				out.Outcomes[Outcome(o).String()] = int(n)
			}
		}
		for i, h := range tr.stageHist {
			out.Stages[StageNames[i]] = summarize(h)
		}
		out.Total = summarize(tr.totalHist)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

// Dump writes a flight-recorder dump with a reason header — the
// supervisor calls this on dark-feed and crash transitions so the trace
// history around a monitoring-plane failure is preserved.
func (tr *Tracer) Dump(w io.Writer, reason string) {
	fmt.Fprintf(w, "=== trace flight recorder dump: %s ===\n", reason)
	tr.rec.WriteJSON(w)
}

// WriteBreakdown renders the paper-style (Fig. 10) latency-breakdown
// table over the retained converged spans, followed by outcome counts
// and, when at least one complete trace exists, an example trace whose
// stage sum is checked against its wall time. Outcome totals come from
// the tracer's counters and converged spans from their dedicated ring,
// so neither is lost when a steady no-reroute stream wraps the main
// flight recorder.
func (tr *Tracer) WriteBreakdown(w io.Writer) {
	conv := tr.ConvergedSpans()
	counts := tr.OutcomeCounts()
	fmt.Fprintf(w, "control-loop traces: %d completed, %d converged, %d still open\n",
		tr.Completed.Value(), tr.Converged.Value(), tr.ActiveCount())
	for o := Outcome(1); o < outcomeCount; o++ {
		if n := counts[o]; n > 0 {
			fmt.Fprintf(w, "  %-18s %d\n", o.String(), n)
		}
	}
	if len(conv) == 0 {
		return
	}
	if int(tr.Converged.Value()) > len(conv) {
		fmt.Fprintf(w, "  (percentiles over the %d most recent converged traces)\n", len(conv))
	}

	// Per-stage percentiles over converged spans, computed exactly.
	vals := make([][]float64, NumStages+1)
	for _, s := range conv {
		bd := s.Breakdown()
		for i, d := range bd {
			vals[i] = append(vals[i], d.Microseconds())
		}
		vals[NumStages] = append(vals[NumStages], s.Total().Microseconds())
	}
	q := func(sorted []float64, p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	fmt.Fprintf(w, "\n%-12s  %10s  %10s  %10s\n", "stage", "p50 (µs)", "p99 (µs)", "max (µs)")
	names := append(StageNames[:], "total")
	for i, name := range names {
		sort.Float64s(vals[i])
		fmt.Fprintf(w, "%-12s  %10.1f  %10.1f  %10.1f\n",
			name, q(vals[i], 0.5), q(vals[i], 0.99), vals[i][len(vals[i])-1])
	}

	ex := conv[0]
	bd := ex.Breakdown()
	var sum units.Duration
	for _, d := range bd {
		sum += d
	}
	mech := "OpenFlow"
	if ex.ViaARP {
		mech = "ARP"
	}
	fmt.Fprintf(w, "\nexample trace #%d: %s port %d, epoch %d→%d, %s move h%d→h%d onto tree %d, %d retries\n",
		ex.ID, ex.Switch, ex.Port, ex.EpochOld, ex.EpochNew, mech,
		ex.SrcHost, ex.DstHost, ex.Tree, ex.Retries)
	for i, d := range bd {
		fmt.Fprintf(w, "  %-12s %10.1f µs\n", StageNames[i], d.Microseconds())
	}
	fmt.Fprintf(w, "  %-12s %10.1f µs (stage sum %.1f µs)\n",
		"total", ex.Total().Microseconds(), sum.Microseconds())
}
