package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handle mounts h at pattern on every mux Handler() subsequently
// builds. It lets layered packages (obs/trace's /debug/traces) join
// the registry's introspection surface. Patterns colliding with the
// built-in routes panic, same contract as duplicate metric names.
func (r *Registry) Handle(pattern string, h http.Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch pattern {
	case "/metrics", "/debug/vars", "/debug/pprof/":
		panic(fmt.Sprintf("obs: pattern %q shadows a built-in route", pattern))
	}
	if r.extras == nil {
		r.extras = make(map[string]http.Handler)
	}
	if _, dup := r.extras[pattern]; dup {
		panic(fmt.Sprintf("obs: duplicate HTTP pattern %q", pattern))
	}
	r.extras[pattern] = h
}

// Handler returns the registry's live-introspection mux:
//
//	/metrics        Prometheus text exposition
//	/debug/vars     expvar-style JSON snapshot
//	/debug/pprof    the standard net/http/pprof endpoints
//	plus any routes added with Handle
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	r.mu.RLock()
	for pattern, h := range r.extras {
		mux.Handle(pattern, h)
	}
	r.mu.RUnlock()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves the registry's Handler in a background
// goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: r.Handler()}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
