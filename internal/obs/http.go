package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the registry's live-introspection mux:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   expvar-style JSON snapshot
//	/debug/pprof  the standard net/http/pprof endpoints
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves the registry's Handler in a background
// goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: r.Handler()}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
