package switchsim

import "planck/internal/units"

// Profiles for the two switches the paper evaluates. Buffer constants
// follow §5.1: the Broadcom Trident ASIC behind the G8264 has a 9 MB
// shared pool of which a single congested port consumes up to ~4 MB
// (alpha 0.8 reproduces that fixed point: q = 0.8*(9 MB - q) → 4 MB).
// The monitor-port allocation is chosen so the congested-mirror sample
// latency matches the measured medians (≈3.5 ms at 10 Gbps, Fig. 8):
// 4 MiB / 10 Gbps ≈ 3.4 ms of queueing.
//
// The Pronto 3290 is a 1 Gbps, 48+4-port switch with a much smaller
// buffer; its constants are set so the Fig. 8 1 Gbps median (just over
// 6 ms) falls out: 768 KiB / 1 Gbps ≈ 6.3 ms.

// ProfileG8264 returns the 10 Gbps IBM RackSwitch G8264 configuration
// with n ports.
func ProfileG8264(name string, n int) Config {
	return Config{
		Name:                name,
		NumPorts:            n,
		LineRate:            units.Rate10G,
		SharedBufferBytes:   9 << 20,
		PerPortReserveBytes: 20 << 10,
		DTAlpha:             0.8,
		MirrorBufferBytes:   4 << 20,
	}
}

// ProfilePronto3290 returns the 1 Gbps Pronto 3290 configuration with n
// ports.
func ProfilePronto3290(name string, n int) Config {
	return Config{
		Name:                name,
		NumPorts:            n,
		LineRate:            units.Rate1G,
		SharedBufferBytes:   4 << 20,
		PerPortReserveBytes: 16 << 10,
		DTAlpha:             0.8,
		MirrorBufferBytes:   768 << 10,
	}
}

// MinBuffer returns a copy of cfg with the monitor-port buffering reduced
// to a handful of packets — the firmware change §9.2 asks vendors for and
// the "minbuffer" rows of Table 1 assume.
func MinBuffer(cfg Config) Config {
	cfg.MirrorBufferBytes = 3 * 1538
	return cfg
}
