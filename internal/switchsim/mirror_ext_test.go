package switchsim

import (
	"testing"

	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/units"
)

// tcpFlagged builds a TCP packet with specific flags.
func tcpFlagged(eng *sim.Engine, src, dst int, payload int, flags uint8) *sim.Packet {
	p := tcpPkt(eng, src, dst, payload)
	p.TCPFlags = flags
	return p
}

// TestPrioritySamplingSYNsSurviveOversubscription: under a saturated
// mirror, SYN/FIN/RST packets must be sampled preferentially.
func TestPrioritySamplingSYNsSurviveOversubscription(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorBufferBytes = 64 << 10
	cfg.MirrorPriorityFlags = true
	eng, sw, _, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)

	// Two saturated inputs (2:1 mirror oversubscription), with a SYN
	// interleaved every 100 packets.
	const n = 4000
	var synsSent int
	for i := 0; i < n; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
		if i%100 == 0 {
			qs[1].Enqueue(tcpFlagged(eng, 1, 3, 0, packet.TCPSyn))
			synsSent++
		} else {
			qs[1].Enqueue(tcpPkt(eng, 1, 3, 1460))
		}
	}
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	eng.Run()

	if sw.MirrorPrioQueued.Packets < int64(synsSent)*9/10 {
		t.Fatalf("only %d of %d SYNs sampled via priority", sw.MirrorPrioQueued.Packets, synsSent)
	}
	// Normal sampling must still deliver roughly its fair share.
	frac := float64(sw.MirrorQueued.Packets) / float64(sw.MirrorQueued.Packets+sw.MirrorDropped.Packets)
	if frac < 0.35 {
		t.Fatalf("normal sampling crushed: %.2f", frac)
	}
}

// TestPriorityFractionCapResistsSYNFlood: a flood of flagged packets must
// not suppress normal samples beyond the configured share (§9.2's
// attacker caveat).
func TestPriorityFractionCapResistsSYNFlood(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorBufferBytes = 256 << 10
	cfg.MirrorPriorityFlags = true
	cfg.MirrorPriorityMaxFraction = 0.1
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)

	const n = 8000
	for i := 0; i < n; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))                 // victim data
		qs[1].Enqueue(tcpFlagged(eng, 1, 3, 0, packet.TCPSyn)) // SYN flood
	}
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	eng.Run()

	total := float64(hosts[5].n)
	prio := float64(sw.prioServed)
	if total == 0 {
		t.Fatal("monitor received nothing")
	}
	// The flood may take at most ~the configured fraction (plus slack for
	// phases where the normal queue was empty).
	if prio/total > 0.35 {
		t.Fatalf("priority class took %.0f%% of samples", 100*prio/total)
	}
	if int64(total)-sw.prioServed < int64(n)/4 {
		t.Fatalf("normal samples suppressed: %d", int64(total)-sw.prioServed)
	}
}

// TestTargetRateMirroringThinsWithoutBuffering: the §9.2 "rate of
// samples" mode must cap the sample stream near the target with an
// almost-empty monitor queue.
func TestTargetRateMirroringThinsWithoutBuffering(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorTargetRate = 2 * units.Gbps
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)

	var maxQ int64
	tick := sim.NewTicker(eng, 20*units.Microsecond, func(units.Time) {
		if q := sw.QueueBytes(5); q > maxQ {
			maxQ = q
		}
	})
	const n = 8000 // ~2x10G offered for ~10ms
	for i := 0; i < n; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
		qs[1].Enqueue(tcpPkt(eng, 1, 3, 1460))
	}
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	eng.RunUntil(units.Time(15 * units.Millisecond))
	tick.Stop()
	eng.Run()

	// Sampled volume ≈ target x duration: 2 Gbps for ~10 ms = 2.5 MB.
	sampledBytes := sw.MirrorQueued.Bytes
	if sampledBytes < 2_000_000 || sampledBytes > 3_200_000 {
		t.Fatalf("sampled %d bytes, want ≈2.5MB", sampledBytes)
	}
	// The queue never builds: samples are pre-thinned below line rate.
	if maxQ > 5*1538 {
		t.Fatalf("monitor queue built to %d bytes", maxQ)
	}
	if hosts[5].n == 0 {
		t.Fatal("no samples delivered")
	}
}
