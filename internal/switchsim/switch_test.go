package switchsim

import (
	"testing"

	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/units"
)

// hostStub terminates links with arrival accounting.
type hostStub struct {
	name string
	eng  *sim.Engine
	n    int
	at   []units.Time
	last *sim.Packet
	keep bool
}

func (h *hostStub) Name() string { return h.name }
func (h *hostStub) Receive(now units.Time, _ *sim.Port, pkt *sim.Packet) {
	h.n++
	h.at = append(h.at, now)
	if h.keep {
		cp := *pkt
		h.last = &cp
	}
	h.eng.FreePacket(pkt)
}

func mac(i int) packet.MAC { return packet.MAC{0x02, 0, 0, 0, 0, byte(i)} }
func ip(i int) packet.IPv4 { return packet.IPv4{10, 0, 0, byte(i)} }

func smallConfig() Config {
	return Config{
		Name:                "sw",
		NumPorts:            6,
		LineRate:            units.Rate10G,
		SharedBufferBytes:   9 << 20,
		PerPortReserveBytes: 20 << 10,
		DTAlpha:             0.8,
		MirrorBufferBytes:   4 << 20,
	}
}

// rig builds a switch with stub hosts on every port.
func rig(t *testing.T, cfg Config) (*sim.Engine, *Switch, []*hostStub, []*sim.Fifo) {
	t.Helper()
	eng := sim.New()
	sw, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]*hostStub, cfg.NumPorts)
	qs := make([]*sim.Fifo, cfg.NumPorts)
	for i := 0; i < cfg.NumPorts; i++ {
		hosts[i] = &hostStub{name: "h", eng: eng}
		p := sim.NewPort(eng, hosts[i], 0, cfg.LineRate)
		qs[i] = &sim.Fifo{}
		p.SetSource(qs[i])
		sim.Connect(p, sw.Port(i), 100*units.Nanosecond)
	}
	return eng, sw, hosts, qs
}

func tcpPkt(eng *sim.Engine, src, dst int, payload int) *sim.Packet {
	p := eng.NewPacket()
	p.Kind = sim.KindTCP
	p.SrcMAC, p.DstMAC = mac(src), mac(dst)
	p.SrcIP, p.DstIP = ip(src), ip(dst)
	p.SrcPort, p.DstPort = 1000, 2000
	p.PayloadLen = payload
	p.WireLen = payload + sim.TCPHeaderBytes
	return p
}

// inject pushes a packet from host i's queue through its link.
func inject(eng *sim.Engine, qs []*sim.Fifo, i int, pkt *sim.Packet, hosts []*hostStub) {
	qs[i].Enqueue(pkt)
	hosts[i].eng = eng
}

func TestForwardByMAC(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	pkt := tcpPkt(eng, 1, 2, 1000)
	inject(eng, qs, 1, pkt, hosts)
	hostPort := sw.Port(1).Peer()
	hostPort.Kick(0)
	eng.Run()
	if hosts[2].n != 1 {
		t.Fatalf("host2 got %d packets", hosts[2].n)
	}
	if sw.DataForwarded.Packets != 1 || sw.DataDropped.Packets != 0 {
		t.Fatalf("forwarded %d dropped %d", sw.DataForwarded.Packets, sw.DataDropped.Packets)
	}
}

func TestTableMissDrops(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	pkt := tcpPkt(eng, 1, 2, 1000)
	inject(eng, qs, 1, pkt, hosts)
	sw.Port(1).Peer().Kick(0)
	eng.Run()
	if sw.TableMisses.Packets != 1 {
		t.Fatalf("misses %d", sw.TableMisses.Packets)
	}
	if hosts[2].n != 0 {
		t.Fatal("delivered despite miss")
	}
}

func TestEgressRewrite(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	shadow := packet.MAC{0x02, 1, 0, 0, 0, 2}
	sw.InstallMAC(shadow, 2)
	sw.InstallRewrite(shadow, mac(2))
	hosts[2].keep = true
	pkt := tcpPkt(eng, 1, 2, 100)
	pkt.DstMAC = shadow
	inject(eng, qs, 1, pkt, hosts)
	sw.Port(1).Peer().Kick(0)
	eng.Run()
	if hosts[2].n != 1 {
		t.Fatalf("delivered %d", hosts[2].n)
	}
	if hosts[2].last.DstMAC != mac(2) {
		t.Fatalf("dst mac not restored: %v", hosts[2].last.DstMAC)
	}
}

func TestFlowRuleRewriteAndCount(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	shadow := packet.MAC{0x02, 1, 0, 0, 0, 2}
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(shadow, 3) // alternate path exits port 3
	key := packet.FlowKey{SrcIP: ip(1), DstIP: ip(2), SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP}
	rule := sw.InstallFlowRule(FlowRule{Match: key, RewriteDst: true, NewDst: shadow})
	pkt := tcpPkt(eng, 1, 2, 500)
	inject(eng, qs, 1, pkt, hosts)
	sw.Port(1).Peer().Kick(0)
	eng.Run()
	if hosts[3].n != 1 || hosts[2].n != 0 {
		t.Fatalf("rewrite did not redirect: p2=%d p3=%d", hosts[2].n, hosts[3].n)
	}
	if rule.Counter.Packets != 1 || rule.Counter.Bytes != int64(500+sim.TCPHeaderBytes) {
		t.Fatalf("rule counter %+v", rule.Counter)
	}
	sw.RemoveFlowRule(key)
	pkt2 := tcpPkt(eng, 1, 2, 500)
	inject(eng, qs, 1, pkt2, hosts)
	sw.Port(1).Peer().Kick(eng.Now())
	eng.Run()
	if hosts[2].n != 1 {
		t.Fatal("rule removal did not restore base route")
	}
}

func TestMirrorReplicates(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.EnableMirror(5, nil)
	pkt := tcpPkt(eng, 1, 2, 1000)
	inject(eng, qs, 1, pkt, hosts)
	sw.Port(1).Peer().Kick(0)
	eng.Run()
	if hosts[2].n != 1 {
		t.Fatalf("original not delivered: %d", hosts[2].n)
	}
	if hosts[5].n != 1 {
		t.Fatalf("mirror copy not delivered: %d", hosts[5].n)
	}
	if sw.MirrorQueued.Packets != 1 {
		t.Fatalf("mirror queued %d", sw.MirrorQueued.Packets)
	}
}

func TestMirrorSelectivePorts(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, []int{2}) // only traffic to port 2 mirrored
	p1 := tcpPkt(eng, 1, 2, 100)
	p2 := tcpPkt(eng, 1, 3, 100)
	qs[1].Enqueue(p1)
	qs[1].Enqueue(p2)
	sw.Port(1).Peer().Kick(0)
	eng.Run()
	if hosts[5].n != 1 {
		t.Fatalf("mirror got %d, want 1", hosts[5].n)
	}
	_ = hosts
}

// TestMirrorOversubscriptionDrops: two saturated inputs to distinct
// outputs mirror to one port; the monitor queue must cap at the mirror
// allocation and drop ~half of the copies while data traffic is unharmed.
func TestMirrorOversubscriptionDrops(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorBufferBytes = 64 << 10
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)
	const n = 2000
	for i := 0; i < n; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
		qs[1].Enqueue(tcpPkt(eng, 1, 3, 1460))
	}
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	eng.Run()
	if hosts[2].n != n || hosts[3].n != n {
		t.Fatalf("data loss: %d/%d", hosts[2].n, hosts[3].n)
	}
	if sw.DataDropped.Packets != 0 {
		t.Fatalf("data drops %d", sw.DataDropped.Packets)
	}
	total := sw.MirrorQueued.Packets + sw.MirrorDropped.Packets
	if total != 2*n {
		t.Fatalf("mirror accounting: %d", total)
	}
	frac := float64(sw.MirrorQueued.Packets) / float64(total)
	if frac < 0.4 || frac > 0.65 {
		t.Fatalf("sampled fraction %.2f, want ~0.5", frac)
	}
	if hosts[5].n != int(sw.MirrorQueued.Packets) {
		t.Fatalf("monitor received %d of %d queued", hosts[5].n, sw.MirrorQueued.Packets)
	}
}

// TestDTDropsWhenOversubscribed: two inputs at line rate to one output
// must drop roughly half once the DT threshold is reached, and the queue
// must settle near alpha/(1+alpha) * pool.
func TestDTDropsWhenOversubscribed(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	const n = 6000 // ~9 MB offered from each input
	for i := 0; i < n; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
		qs[1].Enqueue(tcpPkt(eng, 1, 2, 1460))
	}
	var maxQ int64
	tick := sim.NewTicker(eng, 10*units.Microsecond, func(now units.Time) {
		if q := sw.QueueBytes(2); q > maxQ {
			maxQ = q
		}
	})
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	eng.RunUntil(units.Time(5 * units.Millisecond))
	tick.Stop()
	eng.Run()

	if sw.DataDropped.Packets == 0 {
		t.Fatal("no drops despite 2:1 oversubscription")
	}
	// DT fixed point: q = alpha*(B - q) -> q = B*alpha/(1+alpha) = 4 MB.
	want := int64(float64(cfg.SharedBufferBytes) * cfg.DTAlpha / (1 + cfg.DTAlpha))
	if maxQ < want*8/10 || maxQ > want*11/10+int64(cfg.PerPortReserveBytes) {
		t.Fatalf("max queue %d, want ≈%d", maxQ, want)
	}
	if hosts[2].n+int(sw.DataDropped.Packets) != 2*n {
		t.Fatalf("conservation: %d delivered + %d dropped != %d",
			hosts[2].n, sw.DataDropped.Packets, 2*n)
	}
}

// TestSharedPoolNeverExceeded is the buffer-accounting invariant.
func TestSharedPoolNeverExceeded(t *testing.T) {
	cfg := smallConfig()
	cfg.SharedBufferBytes = 256 << 10
	cfg.MirrorBufferBytes = 128 << 10
	eng, sw, _, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)
	for i := 0; i < 3000; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
		qs[1].Enqueue(tcpPkt(eng, 1, 2, 1460))
		qs[4].Enqueue(tcpPkt(eng, 4, 3, 1460))
	}
	stop := false
	sim.NewTicker(eng, units.Microsecond, func(now units.Time) {
		if sw.SharedUsed() > cfg.SharedBufferBytes && !stop {
			stop = true
			t.Errorf("shared pool exceeded: %d > %d", sw.SharedUsed(), cfg.SharedBufferBytes)
		}
	})
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	sw.Port(4).Peer().Kick(0)
	eng.RunUntil(units.Time(3 * units.Millisecond))
	eng.Stop()
	if sw.SharedUsed() < 0 {
		t.Fatalf("negative shared usage %d", sw.SharedUsed())
	}
}

func TestIngressCounters(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.SetEdgePort(1, true)
	for i := 0; i < 5; i++ {
		qs[1].Enqueue(tcpPkt(eng, 1, 2, 1000))
	}
	sw.Port(1).Peer().Kick(0)
	eng.Run()
	key := packet.FlowKey{SrcIP: ip(1), DstIP: ip(2), SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP}
	c := sw.IngressCounter(key)
	if c == nil || c.Packets != 5 {
		t.Fatalf("ingress counter %+v", c)
	}
	_ = hosts
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumPorts: 0, LineRate: units.Rate10G, SharedBufferBytes: 1, DTAlpha: 1},
		{NumPorts: 4, LineRate: 0, SharedBufferBytes: 1, DTAlpha: 1},
		{NumPorts: 4, LineRate: units.Rate10G, SharedBufferBytes: 0, DTAlpha: 1},
		{NumPorts: 4, LineRate: units.Rate10G, SharedBufferBytes: 1, DTAlpha: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}
