// Package switchsim models a shared-buffer, output-queued commodity
// Ethernet switch of the class the paper evaluates (IBM RackSwitch G8264,
// Pronto 3290; both Broadcom-ASIC designs). The model captures exactly the
// buffer-architecture phenomena Planck exploits and perturbs:
//
//   - a shared memory pool (9 MB on the Trident ASIC) divided dynamically
//     among congested output queues by a Dynamic Threshold (DT) policy,
//     so a single congested port can hold ~4 MB (§5.1);
//   - egress port mirroring: packets switched to a mirrored output port
//     are replicated to a designated monitor port;
//   - an oversubscribed monitor port that buffers up to a fixed firmware
//     allocation and tail-drops the rest, which is what turns mirroring
//     into load-proportional sampling (§3.1, Fig. 9);
//   - mirror-queue occupancy stealing shared buffer from data ports,
//     which is the cause of the small loss/latency perturbations in
//     Figs. 2–4.
//
// Forwarding is exact-match on destination MAC (the paper routes on MACs,
// §4.2), with an OpenFlow-style 5-tuple rule table ahead of it for rewrite
// actions and flow counters, and an egress shadow-MAC restore table.
package switchsim

import (
	"fmt"

	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/units"
)

// Config describes a switch's buffer architecture.
type Config struct {
	// Name identifies the switch.
	Name string
	// NumPorts is the number of front-panel ports.
	NumPorts int
	// LineRate is the per-port rate.
	LineRate units.Rate
	// SharedBufferBytes is the dynamically shared packet memory pool.
	SharedBufferBytes int64
	// PerPortReserveBytes is the guaranteed allocation per output queue,
	// not counted against the shared pool.
	PerPortReserveBytes int64
	// DTAlpha is the Dynamic Threshold factor: a queue may grow to
	// reserve + alpha * (free shared pool). 0.8 makes a single congested
	// port consume ~4 MB of a 9 MB pool, matching §5.1.
	DTAlpha float64
	// MirrorBufferBytes caps the monitor-port queue. The paper infers the
	// G8264 firmware pins a fixed allocation (Fig. 9's flat latency); the
	// "minbuffer" rows of Table 1 correspond to shrinking this value.
	MirrorBufferBytes int64

	// --- §9.2 future-switch proposals, disabled by default ---

	// MirrorTargetRate, when positive, replaces oversubscribed mirroring
	// with the paper's "rate of samples" proposal: the switch admits
	// mirror copies through a token bucket refilled at this rate, so
	// samples are pre-thinned to what the monitor link can carry and the
	// mirror queue never builds the multi-millisecond backlog of Fig. 8.
	MirrorTargetRate units.Rate
	// MirrorPriorityFlags enables preferential sampling of packets with
	// TCP SYN/FIN/RST flags through a small dedicated allocation that is
	// served ahead of the normal mirror queue.
	MirrorPriorityFlags bool
	// MirrorPriorityReserve sizes the priority allocation (default 32 KiB).
	MirrorPriorityReserve int64
	// MirrorPriorityMaxFraction caps the share of transmitted samples the
	// priority class may take, so a SYN flood cannot suppress normal
	// samples (§9.2's caveat). Default 0.1.
	MirrorPriorityMaxFraction float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.NumPorts <= 0:
		return fmt.Errorf("switchsim: %q: NumPorts %d", c.Name, c.NumPorts)
	case c.LineRate <= 0:
		return fmt.Errorf("switchsim: %q: LineRate %v", c.Name, c.LineRate)
	case c.SharedBufferBytes <= 0:
		return fmt.Errorf("switchsim: %q: SharedBufferBytes %d", c.Name, c.SharedBufferBytes)
	case c.DTAlpha <= 0:
		return fmt.Errorf("switchsim: %q: DTAlpha %g", c.Name, c.DTAlpha)
	case c.PerPortReserveBytes < 0:
		return fmt.Errorf("switchsim: %q: PerPortReserveBytes %d", c.Name, c.PerPortReserveBytes)
	case c.MirrorBufferBytes < 0:
		return fmt.Errorf("switchsim: %q: MirrorBufferBytes %d", c.Name, c.MirrorBufferBytes)
	}
	return nil
}

// FlowRule is an OpenFlow-style exact-match rule: count the flow and
// optionally rewrite its destination MAC (the paper's OpenFlow-based
// reroute mechanism, §6.2).
type FlowRule struct {
	Match packet.FlowKey
	// RewriteDst, when true, replaces the destination MAC with NewDst.
	RewriteDst bool
	NewDst     packet.MAC
	// Counter tracks packets and bytes hitting the rule, exposed to the
	// polling-based traffic-engineering baselines.
	Counter stats.Counter
}

// Switch is a simulated shared-buffer switch.
type Switch struct {
	eng  *sim.Engine
	cfg  Config
	name string

	ports  []*sim.Port
	queues []*outQueue

	macTable   map[uint64]int32      // dstMAC -> output port
	rewriteTab map[uint64]packet.MAC // shadow MAC -> real host MAC (egress restore)
	flowRules  map[packet.FlowKey]*FlowRule
	edgePort   []bool // host-facing ports, where ingress flow counters run

	// ingressCounters tracks per-flow bytes on edge ports, emulating the
	// per-flow OpenFlow counters the polling baselines read.
	ingressCounters map[packet.FlowKey]*stats.Counter

	mirrorEnabled bool
	monitorPort   int32
	mirrored      []bool // indexed by output port: replicate to monitor?

	// Per-port mirror-rate overrides installed at runtime by mirror-config
	// commits (governor tuning). A positive rate pre-thins that port's
	// copies through its own token bucket before any shared machinery;
	// zero leaves the construction-time behavior untouched.
	portMirrorRate []units.Rate
	portTokens     []float64
	portTokensAt   []units.Time

	// Priority mirror queue (§9.2 preferential sampling).
	prioQ     []*sim.Packet
	prioHead  int
	prioBytes int64
	// Served counters implement the priority-fraction cap.
	prioServed, mirrorServed int64
	monSrc                   monitorSource

	// Token bucket for target-rate mirroring (§9.2).
	mirrorTokens   float64
	mirrorTokensAt units.Time

	sharedUsed int64 // sum over queues of max(0, bytes-reserve)

	// Statistics.
	DataForwarded stats.Counter // packets enqueued to data ports
	DataDropped   stats.Counter // data packets dropped by buffer admission
	MirrorQueued  stats.Counter // mirror copies enqueued
	MirrorDropped stats.Counter // mirror copies dropped (the sampling drop)
	// MirrorThinned counts copies discarded by a governor-installed
	// per-port rate override. Thinning is configured sampling at a known
	// rate (§9.2), not an uncontrolled sampling drop, so it is accounted
	// apart from MirrorDropped — the governor's saturation signal must
	// clear once its own tuning has the queue under control.
	MirrorThinned stats.Counter
	// mirrorQueuedBy/mirrorDroppedBy/mirrorThinnedBy break the mirror
	// counters out by the mirrored source output port, so an estimator
	// can attribute sampling drops to the port whose traffic caused them.
	mirrorQueuedBy  []stats.Counter
	mirrorDroppedBy []stats.Counter
	mirrorThinnedBy []stats.Counter
	// MirrorPrioQueued counts samples admitted through the §9.2 priority
	// class.
	MirrorPrioQueued stats.Counter
	TableMisses      stats.Counter // packets with no MAC table entry

	// OnDeliver, when set, observes every packet the switch enqueues to a
	// data port (post-rewrite), letting experiments trace traffic without
	// hacking the data path.
	OnDeliver func(now units.Time, outPort int, pkt *sim.Packet)

	// SampleSink, when set together with EnableMirror, realizes §9.2's
	// in-switch collector proposal: every would-be mirror copy is handed
	// to the sink at switching time instead of consuming a front-panel
	// port and buffer space. The packet is only valid during the call.
	SampleSink func(now units.Time, pkt *sim.Packet)
}

// New creates a switch and its ports. Ports are created unconnected; use
// Port(i) and sim.Connect to wire the topology.
func New(eng *sim.Engine, cfg Config) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sw := &Switch{
		eng:             eng,
		cfg:             cfg,
		name:            cfg.Name,
		macTable:        make(map[uint64]int32),
		rewriteTab:      make(map[uint64]packet.MAC),
		flowRules:       make(map[packet.FlowKey]*FlowRule),
		ingressCounters: make(map[packet.FlowKey]*stats.Counter),
		edgePort:        make([]bool, cfg.NumPorts),
		mirrored:        make([]bool, cfg.NumPorts),
		monitorPort:     -1,
		portMirrorRate:  make([]units.Rate, cfg.NumPorts),
		portTokens:      make([]float64, cfg.NumPorts),
		portTokensAt:    make([]units.Time, cfg.NumPorts),
		mirrorQueuedBy:  make([]stats.Counter, cfg.NumPorts),
		mirrorDroppedBy: make([]stats.Counter, cfg.NumPorts),
		mirrorThinnedBy: make([]stats.Counter, cfg.NumPorts),
	}
	sw.ports = make([]*sim.Port, cfg.NumPorts)
	sw.queues = make([]*outQueue, cfg.NumPorts)
	for i := 0; i < cfg.NumPorts; i++ {
		p := sim.NewPort(eng, sw, i, cfg.LineRate)
		q := &outQueue{sw: sw, port: p}
		p.SetSource(q)
		sw.ports[i] = p
		sw.queues[i] = q
	}
	return sw, nil
}

// Name implements sim.Node.
func (sw *Switch) Name() string { return sw.name }

// Config returns the switch configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// Port returns port i.
func (sw *Switch) Port(i int) *sim.Port { return sw.ports[i] }

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// SetEdgePort marks port i as host-facing; packets arriving on edge ports
// update the per-flow ingress counters used by polling baselines.
func (sw *Switch) SetEdgePort(i int, edge bool) { sw.edgePort[i] = edge }

// EnableMirror designates monitorPort and replicates every packet switched
// to a port in mirroredOut (all data ports when nil) onto it.
func (sw *Switch) EnableMirror(monitorPort int, mirroredOut []int) {
	sw.mirrorEnabled = true
	sw.monitorPort = int32(monitorPort)
	if sw.cfg.MirrorPriorityFlags {
		sw.monSrc.sw = sw
		sw.ports[monitorPort].SetSource(&sw.monSrc)
	}
	for i := range sw.mirrored {
		sw.mirrored[i] = mirroredOut == nil && i != monitorPort
	}
	for _, p := range mirroredOut {
		sw.mirrored[p] = true
	}
	sw.mirrored[monitorPort] = false
}

// DisableMirror turns mirroring off.
func (sw *Switch) DisableMirror() {
	sw.mirrorEnabled = false
	sw.monitorPort = -1
	for i := range sw.mirrored {
		sw.mirrored[i] = false
	}
}

// MirrorEnabled reports whether egress mirroring is on.
func (sw *Switch) MirrorEnabled() bool { return sw.mirrorEnabled }

// MonitorPort returns the designated monitor port, or -1 while
// mirroring is off.
func (sw *Switch) MonitorPort() int { return int(sw.monitorPort) }

// PortMirrored reports whether packets switched to output port p are
// currently replicated to the monitor port.
func (sw *Switch) PortMirrored(p int) bool {
	return sw.mirrorEnabled && p >= 0 && p < len(sw.mirrored) && sw.mirrored[p]
}

// SetPortMirrored sheds output port p from (or restores it to) the
// mirrored set at runtime — the management-plane actuation behind a
// ChangeMirrorPort diff entry. The monitor port itself stays
// unmirrored. Copies already buffered on the monitor queue drain
// normally; only the replication decision changes.
func (sw *Switch) SetPortMirrored(p int, on bool) {
	if p < 0 || p >= len(sw.mirrored) || int32(p) == sw.monitorPort {
		return
	}
	sw.mirrored[p] = on
}

// SetPortMirrorRate installs (r > 0) or clears (r == 0) a per-port
// "rate of samples" token bucket for output port p, effective from
// now. Distinct from the switch-wide Config.MirrorTargetRate: the
// per-port bucket is the governor's tuning knob and composes with the
// shared machinery downstream of it.
func (sw *Switch) SetPortMirrorRate(now units.Time, p int, r units.Rate) {
	if p < 0 || p >= len(sw.portMirrorRate) {
		return
	}
	sw.portMirrorRate[p] = r
	sw.portTokens[p] = 0
	sw.portTokensAt[p] = now
}

// PortMirrorRate returns output port p's per-port rate override (zero
// when none is installed).
func (sw *Switch) PortMirrorRate(p int) units.Rate {
	if p < 0 || p >= len(sw.portMirrorRate) {
		return 0
	}
	return sw.portMirrorRate[p]
}

// MirrorPortCounters returns the cumulative mirror copies queued and
// dropped for packets switched to output port p — the per-port
// breakdown of MirrorQueued/MirrorDropped that lets an estimator
// attribute sampling drops to the port whose traffic caused them.
func (sw *Switch) MirrorPortCounters(p int) (queued, dropped stats.Counter) {
	if p < 0 || p >= len(sw.mirrorQueuedBy) {
		return
	}
	return sw.mirrorQueuedBy[p], sw.mirrorDroppedBy[p]
}

// MirrorPortThinned returns the cumulative mirror copies port p's
// per-port rate override discarded — intentional, governor-configured
// thinning, accounted apart from the uncontrolled sampling drops in
// MirrorPortCounters.
func (sw *Switch) MirrorPortThinned(p int) stats.Counter {
	if p < 0 || p >= len(sw.mirrorThinnedBy) {
		return stats.Counter{}
	}
	return sw.mirrorThinnedBy[p]
}

// InstallMAC points dstMAC at output port out.
func (sw *Switch) InstallMAC(mac packet.MAC, out int) {
	if out < 0 || out >= len(sw.ports) {
		panic(fmt.Sprintf("switchsim: %s: InstallMAC port %d out of range", sw.name, out))
	}
	sw.macTable[mac.U64()] = int32(out)
}

// InstallMACs bulk-installs a whole forwarding table, as when a routing
// snapshot is (re)installed. Entries are validated like InstallMAC.
func (sw *Switch) InstallMACs(entries map[packet.MAC]int) {
	for mac, out := range entries {
		sw.InstallMAC(mac, out)
	}
}

// LookupMAC returns the output port for mac.
func (sw *Switch) LookupMAC(mac packet.MAC) (int, bool) {
	out, ok := sw.macTable[mac.U64()]
	return int(out), ok
}

// InstallRewrite adds an egress restore rule: packets destined to shadow
// are delivered with their destination rewritten to real (paper Fig. 13).
func (sw *Switch) InstallRewrite(shadow, real packet.MAC) {
	sw.rewriteTab[shadow.U64()] = real
}

// InstallRewrites bulk-installs egress restore rules from a routing
// snapshot's shadow→base table.
func (sw *Switch) InstallRewrites(rules map[packet.MAC]packet.MAC) {
	for shadow, real := range rules {
		sw.InstallRewrite(shadow, real)
	}
}

// InstallFlowRule adds or replaces a 5-tuple rule.
func (sw *Switch) InstallFlowRule(r FlowRule) *FlowRule {
	rule := r
	sw.flowRules[r.Match] = &rule
	return &rule
}

// RemoveFlowRule deletes the rule matching k, if present.
func (sw *Switch) RemoveFlowRule(k packet.FlowKey) { delete(sw.flowRules, k) }

// IngressCounter returns the edge-port flow counter for k, or nil.
func (sw *Switch) IngressCounter(k packet.FlowKey) *stats.Counter {
	return sw.ingressCounters[k]
}

// IngressCounters exposes the whole edge counter table (read-only use).
func (sw *Switch) IngressCounters() map[packet.FlowKey]*stats.Counter {
	return sw.ingressCounters
}

// QueueBytes returns the current occupancy of output queue i.
func (sw *Switch) QueueBytes(i int) int64 { return sw.queues[i].bytes }

// SharedUsed returns the shared-pool occupancy.
func (sw *Switch) SharedUsed() int64 { return sw.sharedUsed }

// Receive implements sim.Node: the switching pipeline.
func (sw *Switch) Receive(now units.Time, in *sim.Port, pkt *sim.Packet) {
	if pkt.EnteredSwitch == 0 {
		pkt.EnteredSwitch = now
	}

	// Edge-port ingress flow accounting (TCP/UDP only).
	if sw.edgePort[in.Index] && pkt.Kind != sim.KindARP {
		k := pkt.FlowKey()
		c := sw.ingressCounters[k]
		if c == nil {
			c = &stats.Counter{}
			sw.ingressCounters[k] = c
		}
		c.Add(pkt.WireLen)
	}

	// OpenFlow-style rule table: counters + optional dst rewrite.
	if len(sw.flowRules) > 0 && pkt.Kind != sim.KindARP {
		if rule, ok := sw.flowRules[pkt.FlowKey()]; ok {
			rule.Counter.Add(pkt.WireLen)
			if rule.RewriteDst {
				pkt.DstMAC = rule.NewDst
			}
		}
	}

	// MAC exact-match forwarding.
	out, ok := sw.macTable[pkt.DstMAC.U64()]
	if !ok {
		sw.TableMisses.Add(pkt.WireLen)
		sw.eng.FreePacket(pkt)
		return
	}

	// Egress mirror replication happens on the forwarding decision, before
	// the shadow-MAC restore, so collectors observe the routing label.
	if sw.mirrorEnabled && sw.mirrored[out] {
		sw.enqueueMirror(now, int(out), pkt)
	}

	// Shadow-MAC restore at the destination's egress switch.
	if len(sw.rewriteTab) > 0 {
		if real, ok := sw.rewriteTab[pkt.DstMAC.U64()]; ok {
			pkt.DstMAC = real
		}
	}

	if sw.OnDeliver != nil {
		sw.OnDeliver(now, int(out), pkt)
	}
	sw.enqueueData(now, int(out), pkt)
}

// Inject places a packet directly onto output port out's queue, modelling
// a control-plane packet-out (the controller's spoofed ARP reroutes enter
// the data plane this way). The packet is subject to normal buffer
// admission.
func (sw *Switch) Inject(now units.Time, out int, pkt *sim.Packet) {
	if pkt.EnteredSwitch == 0 {
		pkt.EnteredSwitch = now
	}
	sw.enqueueData(now, out, pkt)
}

// enqueueData applies the DT admission test and queues pkt for port out.
func (sw *Switch) enqueueData(now units.Time, out int, pkt *sim.Packet) {
	q := sw.queues[out]
	size := int64(pkt.WireLen)
	reserve := sw.cfg.PerPortReserveBytes
	free := clampPos(sw.cfg.SharedBufferBytes - sw.sharedUsed)
	threshold := reserve + int64(sw.cfg.DTAlpha*float64(free))
	if q.bytes+size > threshold {
		sw.DataDropped.Add(pkt.WireLen)
		sw.eng.FreePacket(pkt)
		return
	}
	sw.chargeShared(q, size)
	q.push(pkt)
	sw.DataForwarded.Add(pkt.WireLen)
	q.port.Kick(now)
}

// enqueueMirror replicates pkt onto the monitor queue, tail-dropping at
// the fixed mirror allocation. These drops ARE the sampling mechanism.
// out is the data output port the packet was switched to, used to
// attribute mirror accounting per mirrored source port.
func (sw *Switch) enqueueMirror(now units.Time, out int, pkt *sim.Packet) {
	size := int64(pkt.WireLen)

	// Governor-installed per-port rate override: pre-thin this port's
	// copies at replication time, ahead of any shared machinery, so a
	// tuned port cannot starve the others' share of the monitor queue.
	if r := sw.portMirrorRate[out]; r > 0 {
		if now > sw.portTokensAt[out] {
			sw.portTokens[out] += now.Sub(sw.portTokensAt[out]).Seconds() * float64(r) / 8
			if burst := float64(4 * 1538); sw.portTokens[out] > burst {
				sw.portTokens[out] = burst
			}
			sw.portTokensAt[out] = now
		}
		if sw.portTokens[out] < float64(size) {
			sw.MirrorThinned.Add(pkt.WireLen)
			sw.mirrorThinnedBy[out].Add(pkt.WireLen)
			return
		}
		sw.portTokens[out] -= float64(size)
	}

	if sw.SampleSink != nil {
		// §9.2 in-switch collector: no port, no queue, no buffering.
		sw.MirrorQueued.Add(pkt.WireLen)
		sw.mirrorQueuedBy[out].Add(pkt.WireLen)
		sw.SampleSink(now, pkt)
		return
	}

	// §9.2 "rate of samples": pre-thin through a token bucket instead of
	// letting the queue overflow; samples then see minimal buffering.
	if sw.cfg.MirrorTargetRate > 0 {
		if now > sw.mirrorTokensAt {
			sw.mirrorTokens += now.Sub(sw.mirrorTokensAt).Seconds() * float64(sw.cfg.MirrorTargetRate) / 8
			if burst := float64(4 * 1538); sw.mirrorTokens > burst {
				sw.mirrorTokens = burst
			}
			sw.mirrorTokensAt = now
		}
		if sw.mirrorTokens < float64(size) {
			sw.MirrorDropped.Add(pkt.WireLen)
			sw.mirrorDroppedBy[out].Add(pkt.WireLen)
			return
		}
		sw.mirrorTokens -= float64(size)
	}

	// §9.2 preferential sampling: connection-boundary packets ride a
	// small dedicated allocation served ahead of the normal queue.
	if sw.cfg.MirrorPriorityFlags && pkt.Kind == sim.KindTCP &&
		pkt.TCPFlags&(packet.TCPSyn|packet.TCPFin|packet.TCPRst) != 0 {
		reserve := sw.cfg.MirrorPriorityReserve
		if reserve == 0 {
			reserve = 32 << 10
		}
		if sw.prioBytes+size <= reserve && sw.sharedUsed+size <= sw.cfg.SharedBufferBytes {
			clone := sw.eng.ClonePacket(pkt)
			clone.Mirrored = true
			sw.prioQ = append(sw.prioQ, clone)
			sw.prioBytes += size
			sw.sharedUsed += size
			sw.MirrorPrioQueued.Add(clone.WireLen)
			sw.mirrorQueuedBy[out].Add(clone.WireLen)
			sw.ports[sw.monitorPort].Kick(now)
			return
		}
		// Fall through to the normal queue when the reserve is full.
	}

	q := sw.queues[sw.monitorPort]
	if q.bytes+size > sw.cfg.MirrorBufferBytes ||
		sw.sharedUsed+size > sw.cfg.SharedBufferBytes {
		sw.MirrorDropped.Add(pkt.WireLen)
		sw.mirrorDroppedBy[out].Add(pkt.WireLen)
		return
	}
	clone := sw.eng.ClonePacket(pkt)
	clone.Mirrored = true
	sw.chargeShared(q, size)
	q.push(clone)
	sw.MirrorQueued.Add(clone.WireLen)
	sw.mirrorQueuedBy[out].Add(clone.WireLen)
	q.port.Kick(now)
}

// monitorSource multiplexes the priority and normal mirror queues onto
// the monitor port, capping the priority class's share of transmissions.
type monitorSource struct {
	sw *Switch
}

// Dequeue implements sim.Outbound.
func (m *monitorSource) Dequeue(now units.Time) *sim.Packet {
	sw := m.sw
	prioAvail := sw.prioHead < len(sw.prioQ)
	normQ := sw.queues[sw.monitorPort]
	maxFrac := sw.cfg.MirrorPriorityMaxFraction
	if maxFrac == 0 {
		maxFrac = 0.1
	}
	usePrio := prioAvail
	if prioAvail && normQ.bytes > 0 {
		// Both classes have traffic: honour the fraction cap.
		if float64(sw.prioServed) > maxFrac*float64(sw.mirrorServed+1) {
			usePrio = false
		}
	}
	if usePrio {
		pkt := sw.prioQ[sw.prioHead]
		sw.prioQ[sw.prioHead] = nil
		sw.prioHead++
		if sw.prioHead*2 >= len(sw.prioQ) && sw.prioHead > 16 {
			n := copy(sw.prioQ, sw.prioQ[sw.prioHead:])
			sw.prioQ = sw.prioQ[:n]
			sw.prioHead = 0
		}
		sw.prioBytes -= int64(pkt.WireLen)
		sw.sharedUsed -= int64(pkt.WireLen)
		sw.prioServed++
		sw.mirrorServed++
		return pkt
	}
	pkt := normQ.Dequeue(now)
	if pkt != nil {
		sw.mirrorServed++
	}
	return pkt
}

// chargeShared accounts size bytes entering queue q against the pool.
func (sw *Switch) chargeShared(q *outQueue, size int64) {
	before := q.bytes - sw.cfg.PerPortReserveBytes
	q.bytes += size
	after := q.bytes - sw.cfg.PerPortReserveBytes
	sw.sharedUsed += clampPos(after) - clampPos(before)
}

// releaseShared accounts size bytes leaving queue q.
func (sw *Switch) releaseShared(q *outQueue, size int64) {
	before := q.bytes - sw.cfg.PerPortReserveBytes
	q.bytes -= size
	after := q.bytes - sw.cfg.PerPortReserveBytes
	sw.sharedUsed -= clampPos(before) - clampPos(after)
}

func clampPos(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// outQueue is one output port's FIFO with shared-buffer accounting.
type outQueue struct {
	sw    *Switch
	port  *sim.Port
	q     []*sim.Packet
	head  int
	bytes int64
}

func (q *outQueue) push(pkt *sim.Packet) {
	q.q = append(q.q, pkt)
}

// Dequeue implements sim.Outbound.
func (q *outQueue) Dequeue(now units.Time) *sim.Packet {
	if q.head >= len(q.q) {
		return nil
	}
	pkt := q.q[q.head]
	q.q[q.head] = nil
	q.head++
	if q.head*2 >= len(q.q) && q.head > 32 {
		n := copy(q.q, q.q[q.head:])
		q.q = q.q[:n]
		q.head = 0
	}
	q.sw.releaseShared(q, int64(pkt.WireLen))
	return pkt
}
