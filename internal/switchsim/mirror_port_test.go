package switchsim

import (
	"testing"
)

// TestMirrorPerPortCountersAttribute: under the same 2:1 oversubscribed
// mirror load as TestMirrorOversubscriptionDrops, the per-port mirror
// counters must (a) sum exactly to the aggregate counters and (b)
// attribute every offered copy to the output port whose traffic caused
// it — the breakdown the governor's estimator polls.
func TestMirrorPerPortCountersAttribute(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorBufferBytes = 64 << 10
	eng, sw, _, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)
	// Asymmetric payloads keep the two streams from phase-locking on the
	// admission test, so both mirrored ports see queue and drop activity.
	const n = 2000
	for i := 0; i < n; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
		qs[1].Enqueue(tcpPkt(eng, 1, 3, 733))
	}
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	eng.Run()

	var sumQ, sumD int64
	for p := 0; p < cfg.NumPorts; p++ {
		q, d := sw.MirrorPortCounters(p)
		sumQ += q.Packets
		sumD += d.Packets
		if p != 2 && p != 3 && q.Packets+d.Packets != 0 {
			t.Fatalf("port %d has mirror accounting (%d queued, %d dropped) but carried no mirrored traffic",
				p, q.Packets, d.Packets)
		}
	}
	if sumQ != sw.MirrorQueued.Packets || sumD != sw.MirrorDropped.Packets {
		t.Fatalf("per-port sums (%d, %d) != aggregates (%d, %d)",
			sumQ, sumD, sw.MirrorQueued.Packets, sw.MirrorDropped.Packets)
	}
	for _, p := range []int{2, 3} {
		q, d := sw.MirrorPortCounters(p)
		if q.Packets+d.Packets != n {
			t.Fatalf("port %d offered accounting %d+%d, want %d", p, q.Packets, d.Packets, n)
		}
		if q.Packets == 0 || d.Packets == 0 {
			t.Fatalf("port %d not oversubscribed: %d queued, %d dropped", p, q.Packets, d.Packets)
		}
	}
	// Out-of-range queries are safe zeros.
	if q, d := sw.MirrorPortCounters(-1); q.Packets != 0 || d.Packets != 0 {
		t.Fatal("out-of-range counters not zero")
	}
}

// TestSetPortMirroredRuntime: shedding one port mid-run must freeze its
// replication (counters stop, the other port's continue) and restoring
// it must resume replication — without touching construction-time
// config or the data path.
func TestSetPortMirroredRuntime(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)

	run := func(n int) {
		for i := 0; i < n; i++ {
			qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
			qs[1].Enqueue(tcpPkt(eng, 1, 3, 1460))
		}
		sw.Port(0).Peer().Kick(eng.Now())
		sw.Port(1).Peer().Kick(eng.Now())
		eng.Run()
	}
	offered := func(p int) int64 {
		q, d := sw.MirrorPortCounters(p)
		return q.Packets + d.Packets
	}

	const n = 200
	run(n)
	if offered(2) != n || offered(3) != n {
		t.Fatalf("phase 1 accounting: port2=%d port3=%d, want %d", offered(2), offered(3), n)
	}

	// Shed port 2: its copies stop, port 3 is untouched.
	sw.SetPortMirrored(2, false)
	if sw.PortMirrored(2) || !sw.PortMirrored(3) {
		t.Fatal("shed state wrong")
	}
	run(n)
	if offered(2) != n {
		t.Fatalf("shed port still replicating: %d", offered(2))
	}
	if offered(3) != 2*n {
		t.Fatalf("surviving port perturbed: %d, want %d", offered(3), 2*n)
	}

	// Restore port 2: replication resumes.
	sw.SetPortMirrored(2, true)
	run(n)
	if offered(2) != 2*n || offered(3) != 3*n {
		t.Fatalf("restore accounting: port2=%d port3=%d", offered(2), offered(3))
	}

	// The data path never flinched.
	if hosts[2].n != 3*n || hosts[3].n != 3*n || sw.DataDropped.Packets != 0 {
		t.Fatalf("data path perturbed: %d/%d drops=%d", hosts[2].n, hosts[3].n, sw.DataDropped.Packets)
	}

	// Guard rails: the monitor port can never join the mirrored set, and
	// out-of-range ports are ignored.
	sw.SetPortMirrored(5, true)
	if sw.PortMirrored(5) {
		t.Fatal("monitor port joined the mirrored set")
	}
	sw.SetPortMirrored(-1, true)
	sw.SetPortMirrored(99, true)
}

// TestSetPortMirrorRate: a per-port "rate of samples" bucket must thin
// that port's copies to roughly the installed rate while leaving other
// ports' replication and all data traffic untouched.
func TestSetPortMirrorRate(t *testing.T) {
	cfg := smallConfig()
	eng, sw, hosts, qs := rig(t, cfg)
	sw.InstallMAC(mac(2), 2)
	sw.InstallMAC(mac(3), 3)
	sw.EnableMirror(5, nil)
	sw.SetPortMirrorRate(0, 2, cfg.LineRate/4)
	if sw.PortMirrorRate(2) != cfg.LineRate/4 || sw.PortMirrorRate(3) != 0 {
		t.Fatal("rate install wrong")
	}

	const n = 2000
	for i := 0; i < n; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
		qs[1].Enqueue(tcpPkt(eng, 1, 3, 1460))
	}
	sw.Port(0).Peer().Kick(0)
	sw.Port(1).Peer().Kick(0)
	eng.Run()

	q2, d2 := sw.MirrorPortCounters(2)
	q3, d3 := sw.MirrorPortCounters(3)
	th2 := sw.MirrorPortThinned(2)
	// Bucket discards are intentional thinning, not sampling drops: they
	// land in the thinned counter, never in the dropped one.
	if d2.Packets != 0 {
		t.Fatalf("thinning accounted as sampling drops: %d", d2.Packets)
	}
	if q2.Packets+th2.Packets != n || q3.Packets+d3.Packets != n {
		t.Fatalf("offered accounting: port2=%d port3=%d", q2.Packets+th2.Packets, q3.Packets+d3.Packets)
	}
	if sw.MirrorThinned.Packets != th2.Packets {
		t.Fatalf("aggregate thinned %d != per-port %d", sw.MirrorThinned.Packets, th2.Packets)
	}
	// Port 2's copies arrive at line rate but its bucket refills at a
	// quarter of it, so ~1/4 are admitted (plus a small initial burst).
	frac := float64(q2.Packets) / float64(n)
	if frac < 0.18 || frac > 0.33 {
		t.Fatalf("tuned port admitted fraction %.3f, want ~0.25", frac)
	}
	// Port 3 has no override and the 4 MB mirror buffer absorbs its
	// copies: all admitted.
	if q3.Packets != n || d3.Packets != 0 {
		t.Fatalf("untuned port perturbed: %d queued, %d dropped", q3.Packets, d3.Packets)
	}
	if hosts[2].n != n || hosts[3].n != n || sw.DataDropped.Packets != 0 {
		t.Fatal("data path perturbed by mirror tuning")
	}

	// Clearing the override restores unthinned replication.
	sw.SetPortMirrorRate(eng.Now(), 2, 0)
	for i := 0; i < 100; i++ {
		qs[0].Enqueue(tcpPkt(eng, 0, 2, 1460))
	}
	sw.Port(0).Peer().Kick(eng.Now())
	eng.Run()
	q2b, _ := sw.MirrorPortCounters(2)
	if q2b.Packets-q2.Packets != 100 || sw.MirrorPortThinned(2).Packets != th2.Packets {
		t.Fatalf("cleared override still thinning: +%d queued, thinned %d -> %d",
			q2b.Packets-q2.Packets, th2.Packets, sw.MirrorPortThinned(2).Packets)
	}
}
