package controller

import (
	"math/rand"
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
)

// rig builds the fat-tree data plane with a controller, no collectors.
func rig(t *testing.T, seed int64) (*sim.Engine, *topo.Network, *Controller) {
	t.Helper()
	eng := sim.New()
	net := topo.FatTree16(units.Rate10G)
	rng := rand.New(rand.NewSource(seed))
	switches := make([]*switchsim.Switch, net.NumSwitches())
	for s := range switches {
		cfg := switchsim.ProfileG8264(net.SwitchNames[s], len(net.Ports[s]))
		sw, err := switchsim.New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		switches[s] = sw
	}
	hosts := make([]*tcpsim.Host, net.NumHosts())
	for h := range hosts {
		hosts[h] = tcpsim.NewHost(eng, "h", topo.ShadowMAC(h, 0), topo.HostIP(h), net.LineRate, tcpsim.Config{}, rng)
	}
	for s := 0; s < net.NumSwitches(); s++ {
		for p, ep := range net.Ports[s] {
			switch ep.Kind {
			case topo.ToSwitch:
				if ep.Switch > s || (ep.Switch == s && ep.Port > p) {
					sim.Connect(switches[s].Port(p), switches[ep.Switch].Port(ep.Port), 0)
				}
			case topo.ToHost:
				sim.Connect(hosts[ep.Host].NIC(), switches[s].Port(p), 0)
			}
		}
	}
	ctrl := New(eng, net, switches, hosts, DefaultConfig(), rng)
	return eng, net, ctrl
}

func TestInstallRoutesProgramsEverything(t *testing.T) {
	_, net, ctrl := rig(t, 1)
	trees := make([]int, 16)
	for i := range trees {
		trees[i] = i % 4
	}
	ctrl.InstallRoutes(trees, true)

	// Every switch must resolve every (dst, tree) MAC it participates in.
	for s := 0; s < net.NumSwitches(); s++ {
		for mac, port := range net.MACEntries(s) {
			got, ok := ctrl.Switch(s).LookupMAC(mac)
			if !ok || got != port {
				t.Fatalf("switch %d entry %v: got %d,%v want %d", s, mac, got, ok, port)
			}
		}
	}
	// Hosts' ARP caches point at the assigned trees.
	for h := 0; h < 16; h++ {
		for d := 0; d < 16; d++ {
			if h == d {
				continue
			}
			mac, ok := ctrl.Host(h).LookupNeighbor(topo.HostIP(d))
			if !ok {
				t.Fatalf("host %d missing neighbor %d", h, d)
			}
			if mac != topo.ShadowMAC(d, trees[d]) {
				t.Fatalf("host %d neighbor %d = %v, want tree %d", h, d, mac, trees[d])
			}
		}
	}
	if ctrl.InitialTree(5) != 1 {
		t.Fatalf("initial tree %d", ctrl.InitialTree(5))
	}
}

func TestRerouteARPLandsWithinModelBounds(t *testing.T) {
	eng, _, ctrl := rig(t, 2)
	ctrl.InstallRoutes(make([]int, 16), false)
	var updated units.Time
	ctrl.Host(3).OnARPUpdate = func(now units.Time, ip packet.IPv4, mac packet.MAC) {
		if updated == 0 {
			updated = now
		}
	}
	ctrl.RerouteARP(0, 3, 9, 2)
	eng.RunUntil(units.Time(20 * units.Millisecond))
	if updated == 0 {
		t.Fatal("ARP never landed")
	}
	// Model: U(2.2, 3.1) ms control path + wire + host receive path.
	if updated < units.Time(2200*units.Microsecond) || updated > units.Time(3400*units.Microsecond) {
		t.Fatalf("ARP landed at %v", units.Duration(updated))
	}
	if got, _ := ctrl.Host(3).LookupNeighbor(topo.HostIP(9)); got != topo.ShadowMAC(9, 2) {
		t.Fatalf("cache now %v", got)
	}
	if ctrl.ARPReroutes != 1 {
		t.Fatalf("counter %d", ctrl.ARPReroutes)
	}
}

func TestRerouteOFInstallsRule(t *testing.T) {
	eng, net, ctrl := rig(t, 3)
	ctrl.InstallRoutes(make([]int, 16), false)
	flow := packet.FlowKey{
		SrcIP: topo.HostIP(0), DstIP: topo.HostIP(8),
		SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP,
	}
	ctrl.RerouteOF(0, flow, 0, 8, 3)
	eng.RunUntil(units.Time(20 * units.Millisecond))
	ingress := ctrl.Switch(net.Hosts[0].Switch)
	// The rule must now rewrite toward tree 3: inject a matching packet
	// and check the egress choice by looking at the MAC table target.
	want, ok := ingress.LookupMAC(topo.ShadowMAC(8, 3))
	if !ok {
		t.Fatal("no route for tree-3 MAC at ingress")
	}
	_ = want
	if ctrl.OFReroutes != 1 {
		t.Fatalf("counter %d", ctrl.OFReroutes)
	}
}

func TestMapperIsEpochAwareView(t *testing.T) {
	_, net, ctrl := rig(t, 4)
	ctrl.InstallRoutes(nil, false)
	s := net.Hosts[0].Switch
	m := ctrl.Mapper(s)
	v, ok := m.(core.RouteResolver)
	if !ok {
		t.Fatalf("Mapper returned %T, want a core.RouteResolver", m)
	}
	if e := v.Refresh(); e != ctrl.RoutingStore().Epoch() {
		t.Fatalf("view epoch %d, store epoch %d", e, ctrl.RoutingStore().Epoch())
	}
	// The static-label half matches the switch MAC table.
	port, ok := m.OutputPort(topo.ShadowMAC(8, 2))
	if !ok || port != 3 { // edge ports: 0,1 hosts; 2 -> agg0; 3 -> agg1
		t.Fatalf("output port %d ok=%v", port, ok)
	}
}

// TestRerouteCommitsEpochs pins the transactional shape of the
// consolidated reroute path: every reroute commits exactly one epoch,
// and a no-op reroute (same tree the traffic already rides) commits an
// epoch whose empty diff schedules no data-plane actuation.
func TestRerouteCommitsEpochs(t *testing.T) {
	eng, _, ctrl := rig(t, 5)
	ctrl.InstallRoutes(nil, false)
	st := ctrl.RoutingStore()
	base := st.Epoch()

	var arpSeen int
	ctrl.Host(3).OnARPUpdate = func(now units.Time, ip packet.IPv4, mac packet.MAC) { arpSeen++ }

	ctrl.RerouteARP(0, 3, 9, 2)
	if st.Epoch() != base+1 {
		t.Fatalf("epoch %d after reroute, want %d", st.Epoch(), base+1)
	}
	if got := st.Load().PairTree(3, 9); got != 2 {
		t.Fatalf("pair tree %d, want 2", got)
	}
	eng.RunUntil(units.Time(20 * units.Millisecond))
	if arpSeen != 1 {
		t.Fatalf("arp actuations %d, want 1", arpSeen)
	}

	// Same pair, same tree: one more epoch, empty diff, no second ARP.
	ctrl.RerouteARP(eng.Now(), 3, 9, 2)
	if st.Epoch() != base+2 {
		t.Fatalf("epoch %d after no-op reroute, want %d", st.Epoch(), base+2)
	}
	eng.RunUntil(eng.Now().Add(20 * units.Millisecond))
	if arpSeen != 1 {
		t.Fatalf("no-op reroute actuated: arp actuations %d, want 1", arpSeen)
	}
	if ctrl.ARPReroutes != 2 {
		t.Fatalf("ARPReroutes %d, want 2", ctrl.ARPReroutes)
	}
}
