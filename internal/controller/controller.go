// Package controller models the Planck SDN controller (§3.3, §4.1): it
// installs PAST spanning-tree routes and shadow-MAC alternates into every
// switch, configures oversubscribed mirroring, shares routing state with
// collectors (the port-inference oracle of §3.2.1), aggregates collector
// congestion events for applications, and actuates reroutes through the
// two mechanisms of §6.2 — spoofed unicast ARP and OpenFlow rewrite
// rules — with control-channel latencies calibrated to Fig. 16.
//
// The controller does not mutate switches or mappers in place. Every
// route change is a Commit transaction against the versioned routing
// store (internal/routing): commit the next epoch snapshot, diff it
// against the previous one, and schedule the diff's actuation onto the
// data plane through a routing.Actuator after the modelled control
// latency. Collectors and TE read the same store, so every consumer
// agrees on which routes were live at any instant.
package controller

import (
	"fmt"
	"math/rand"

	"planck/internal/core"
	"planck/internal/obs/trace"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
)

// Config holds control-channel latency models. The defaults reproduce the
// measured response-latency CDFs of Fig. 16: ARP-based control lands at
// 2.5–3.5 ms and OpenFlow-based control at 4–9 ms, with most of the
// difference attributable to switch firmware rule-installation time.
type Config struct {
	// ArpDelayMin/Max bound the controller->host packet-out path: event
	// processing in the controller, the OpenFlow channel, and the switch
	// CPU injecting the crafted ARP.
	ArpDelayMin, ArpDelayMax units.Duration
	// OFDelayMin/Max bound OpenFlow rule installation at the switch.
	OFDelayMin, OFDelayMax units.Duration
	// SettleDelay is how long the controller waits after installing
	// routes before using them, giving collectors time to absorb the
	// route-sync broadcast (§4.1).
	SettleDelay units.Duration
}

// DefaultConfig returns the Fig. 16-calibrated latency model.
func DefaultConfig() Config {
	return Config{
		ArpDelayMin: 2200 * units.Microsecond,
		ArpDelayMax: 3100 * units.Microsecond,
		OFDelayMin:  3700 * units.Microsecond,
		OFDelayMax:  8500 * units.Microsecond,
		SettleDelay: 1 * units.Millisecond,
	}
}

// Controller wires the network together: it owns the routing store's
// write side and an Actuator that realizes committed snapshots on the
// data plane.
type Controller struct {
	eng *sim.Engine
	cfg Config
	rng *rand.Rand

	// store is the versioned routing-state plane. The controller is
	// its single writer; collectors (through Views) and TE read it
	// lock-free.
	store *routing.Store
	// act realizes snapshots and snapshot diffs on the data plane.
	act routing.Actuator

	collectors []*core.Collector // indexed by switch, nil entries allowed

	subs []func(ev core.CongestionEvent)

	// OnReroute observes every actuation at decision time (before the
	// control-channel delay), letting experiments measure response
	// latency end to end.
	OnReroute func(now units.Time, flow packet.FlowKey, srcHost, dstHost, tree int, viaARP bool)

	// Statistics.
	ARPReroutes   int64
	OFReroutes    int64
	MirrorCommits int64
	Events        int64

	met *ctrlMetrics

	// trc, when set, records control-loop spans; curCause is the ID of
	// the event currently being fanned out, so reroutes committed from
	// inside a subscriber are attributed to the event that caused them.
	trc      *trace.Tracer
	curCause uint64
}

// New creates a controller over an assembled simulated data plane. The
// switches and hosts slices must be indexed consistently with net.
func New(eng *sim.Engine, net *topo.Network, switches []*switchsim.Switch, hosts []*tcpsim.Host, cfg Config, rng *rand.Rand) *Controller {
	return NewWithActuator(eng, net, NewSimActuator(eng, net, switches, hosts), cfg, rng)
}

// NewWithActuator creates a controller that actuates through act —
// the seam that lets a non-simulated data plane (or a test double)
// receive snapshot installs and diff applications.
func NewWithActuator(eng *sim.Engine, net *topo.Network, act routing.Actuator, cfg Config, rng *rand.Rand) *Controller {
	if rng == nil {
		panic("controller: need a deterministic rng")
	}
	return &Controller{
		eng:        eng,
		cfg:        cfg,
		rng:        rng,
		store:      routing.NewStore(net),
		act:        act,
		collectors: make([]*core.Collector, net.NumSwitches()),
		met:        newCtrlMetrics(),
	}
}

// Network returns the topology.
func (c *Controller) Network() *topo.Network { return c.store.Net() }

// Engine returns the simulation engine.
func (c *Controller) Engine() *sim.Engine { return c.eng }

// RoutingStore exposes the versioned routing-state plane so TE and
// other read-side consumers share the controller's epochs.
func (c *Controller) RoutingStore() *routing.Store { return c.store }

// InstallRoutes commits the initial routing epoch — each destination's
// base tree (PAST picks one tree per address; nil means tree 0
// everywhere) plus the mirror setting — and installs the snapshot on
// the data plane: MAC entries of all routing trees, egress shadow-MAC
// restore rules, edge-port marking, mirror sessions, host ARP caches.
func (c *Controller) InstallRoutes(initialTrees []int, mirror bool) {
	net := c.store.Net()
	if initialTrees == nil {
		initialTrees = make([]int, net.NumHosts())
	}
	if len(initialTrees) != net.NumHosts() {
		panic(fmt.Sprintf("controller: %d initial trees for %d hosts", len(initialTrees), net.NumHosts()))
	}
	snap := c.store.Commit(c.eng.Now(), func(tx *routing.Tx) {
		tx.SetBaseTrees(initialTrees)
		tx.SetMirror(mirror)
	})
	c.act.InstallSnapshot(snap)
}

// InitialTree returns the base tree assigned to destination d this run.
func (c *Controller) InitialTree(d int) int { return c.store.Load().BaseTree(d) }

// AttachCollector binds a collector to switch s: it receives the routing
// oracle and its congestion events are forwarded to subscribers.
func (c *Controller) AttachCollector(s int, col *core.Collector) {
	c.collectors[s] = col
	col.SetPortMapper(c.Mapper(s))
	col.Subscribe(c.DeliverEvent)
}

// Mapper returns the routing oracle for switch s — an epoch-aware view
// of the shared store, the state a supervisor re-shares with every
// replacement collector it builds (§3.2.1's controller→collector
// routing sync). A fresh view is always pinned to the current epoch,
// so a restarted collector resynchronizes by construction.
func (c *Controller) Mapper(s int) core.PortMapper { return routing.NewView(c.store, s) }

// SetTracer attaches a control-loop tracer: DeliverEvent marks
// delivery and establishes cause context, reroute records decisions
// and actuations against the causing event's span.
func (c *Controller) SetTracer(tr *trace.Tracer) { c.trc = tr }

// DeliverEvent accepts one congestion event into the controller: it is
// counted and fanned out to subscribers. Direct-attached collectors
// call it synchronously; supervised collectors route events through a
// Deliverer so partitions and delays surface as retries instead of
// silent loss.
func (c *Controller) DeliverEvent(ev core.CongestionEvent) {
	c.Events++
	traced := c.trc != nil && ev.ID != 0
	if traced {
		c.trc.MarkDelivered(ev.ID, c.eng.Now())
		prev := c.curCause
		c.curCause = ev.ID
		defer func() {
			c.curCause = prev
			// If no subscriber committed a reroute, the span ends here.
			c.trc.FinishCause(ev.ID)
		}()
	}
	for _, fn := range c.subs {
		fn(ev)
	}
}

// Collector returns switch s's collector, or nil.
func (c *Controller) Collector(s int) *core.Collector { return c.collectors[s] }

// Subscribe registers an application for congestion events from any
// collector.
func (c *Controller) Subscribe(fn func(ev core.CongestionEvent)) {
	c.subs = append(c.subs, fn)
}

// Switch returns switch s when the controller drives the simulated
// data plane, nil behind a custom actuator.
func (c *Controller) Switch(s int) *switchsim.Switch {
	if a, ok := c.act.(*SimActuator); ok {
		return a.Switch(s)
	}
	return nil
}

// Host returns host h when the controller drives the simulated data
// plane, nil behind a custom actuator.
func (c *Controller) Host(h int) *tcpsim.Host {
	if a, ok := c.act.(*SimActuator); ok {
		return a.Host(h)
	}
	return nil
}

func (c *Controller) delay(lo, hi units.Duration) units.Duration {
	if hi <= lo {
		return lo
	}
	return lo + units.Duration(c.rng.Int63n(int64(hi-lo)))
}

// RerouteARP repoints srcHost's ARP entry for dstHost at the shadow MAC
// of tree, moving all srcHost→dstHost traffic (§6.2). The new pair
// override is committed immediately; the spoofed unicast ARP actuates
// after the modelled control-channel latency.
func (c *Controller) RerouteARP(now units.Time, srcHost, dstHost, tree int) {
	c.ARPReroutes++
	c.reroute(now, packet.FlowKey{}, srcHost, dstHost, tree, true)
}

// RerouteOF repoints one flow at the shadow MAC of tree via a
// dst-MAC rewrite rule at the source's ingress switch, installed after
// the modelled rule-installation latency.
func (c *Controller) RerouteOF(now units.Time, flow packet.FlowKey, srcHost, dstHost, tree int) {
	c.OFReroutes++
	c.reroute(now, flow, srcHost, dstHost, tree, false)
}

// reroute is the single actuation path for both reroute mechanisms:
// commit the override into the next epoch (activation stamped after
// the modelled control latency, so collectors attribute in-flight
// samples to the old epoch), then schedule exactly the snapshot diff
// for data-plane actuation. A reroute onto the tree the pair/flow
// already rides yields an empty diff and touches nothing.
func (c *Controller) reroute(now units.Time, flow packet.FlowKey, srcHost, dstHost, tree int, viaARP bool) {
	if c.OnReroute != nil {
		c.OnReroute(now, flow, srcHost, dstHost, tree, viaARP)
	}
	var d units.Duration
	if viaARP {
		d = c.delay(c.cfg.ArpDelayMin, c.cfg.ArpDelayMax)
	} else {
		d = c.delay(c.cfg.OFDelayMin, c.cfg.OFDelayMax)
	}
	c.met.observe(viaARP, d)
	at := now.Add(d)

	prev := c.store.Load()
	snap := c.store.Commit(at, func(tx *routing.Tx) {
		if viaARP {
			tx.SetPairTree(srcHost, dstHost, tree)
		} else {
			tx.SetFlowTree(flow, srcHost, dstHost, tree)
		}
	})
	diff := snap.DiffFrom(prev)

	// Attribute the decision to the event being fanned out, if any
	// (reroutes from TE's periodic view refresh have no cause and are
	// untraced). Only the causing span's first decision claims it; the
	// actuation callbacks below then feed its actuation stage.
	var traceID uint64
	if c.trc != nil && c.curCause != 0 {
		dec := trace.Decision{
			EpochNew: snap.Epoch(),
			ViaARP:   viaARP,
			Flow:     flow,
			NewMAC:   topo.ShadowMAC(dstHost, tree),
			SrcHost:  srcHost, DstHost: dstHost, Tree: tree,
			Changes: len(diff),
		}
		if viaARP {
			// Pair moves carry no 5-tuple; convergence matches on the
			// src/dst pair plus the new shadow-MAC label.
			dec.Flow = packet.FlowKey{SrcIP: topo.HostIP(srcHost), DstIP: topo.HostIP(dstHost)}
		}
		if c.trc.MarkDecided(c.curCause, now, dec) {
			traceID = c.curCause
		}
	}
	for _, ch := range diff {
		ch := ch
		c.eng.Schedule(at, sim.Callback(func(fire units.Time) {
			c.act.Apply(fire, ch)
			if traceID != 0 {
				c.trc.MarkActuated(traceID, fire)
			}
		}), nil)
	}
}

// CommitMirror commits a mirror-configuration transaction — the
// governor's shed/tune actuation — through the same epoch/diff path
// reroutes take: commit the next snapshot (activation stamped after the
// modelled management-channel latency, taken from the OpenFlow delay
// model), diff it against the previous epoch, and schedule exactly the
// ChangeMirrorPort entries for data-plane actuation. Returns the diff
// size; a transaction that changed nothing actuates nothing. traceID,
// when nonzero, attributes the decision and actuations to an open
// control-loop span (the caller marks convergence out of band once its
// estimator confirms the reconfiguration took effect). onActuated, when
// set, fires once after the last diff entry lands.
func (c *Controller) CommitMirror(now units.Time, traceID uint64, mutate func(*routing.Tx), onActuated func(fire units.Time)) int {
	d := c.delay(c.cfg.OFDelayMin, c.cfg.OFDelayMax)
	at := now.Add(d)

	prev := c.store.Load()
	snap := c.store.Commit(at, mutate)
	diff := snap.DiffFrom(prev)

	claimed := false
	if c.trc != nil && traceID != 0 {
		claimed = c.trc.MarkDecided(traceID, now, trace.Decision{
			EpochNew: snap.Epoch(),
			Changes:  len(diff),
		})
	}
	if len(diff) == 0 {
		return 0
	}
	c.MirrorCommits++
	c.met.mirrorDelay.Observe(int64(d))

	remaining := len(diff)
	for _, ch := range diff {
		ch := ch
		c.eng.Schedule(at, sim.Callback(func(fire units.Time) {
			c.act.Apply(fire, ch)
			if claimed {
				c.trc.MarkActuated(traceID, fire)
			}
			remaining--
			if remaining == 0 && onActuated != nil {
				onActuated(fire)
			}
		}), nil)
	}
	return len(diff)
}
