// Package controller models the Planck SDN controller (§3.3, §4.1): it
// installs PAST spanning-tree routes and shadow-MAC alternates into every
// switch, configures oversubscribed mirroring, shares routing state with
// collectors (the port-inference oracle of §3.2.1), aggregates collector
// congestion events for applications, and actuates reroutes through the
// two mechanisms of §6.2 — spoofed unicast ARP and OpenFlow rewrite
// rules — with control-channel latencies calibrated to Fig. 16.
package controller

import (
	"fmt"
	"math/rand"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
)

// Config holds control-channel latency models. The defaults reproduce the
// measured response-latency CDFs of Fig. 16: ARP-based control lands at
// 2.5–3.5 ms and OpenFlow-based control at 4–9 ms, with most of the
// difference attributable to switch firmware rule-installation time.
type Config struct {
	// ArpDelayMin/Max bound the controller->host packet-out path: event
	// processing in the controller, the OpenFlow channel, and the switch
	// CPU injecting the crafted ARP.
	ArpDelayMin, ArpDelayMax units.Duration
	// OFDelayMin/Max bound OpenFlow rule installation at the switch.
	OFDelayMin, OFDelayMax units.Duration
	// SettleDelay is how long the controller waits after installing
	// routes before using them, giving collectors time to absorb the
	// route-sync broadcast (§4.1).
	SettleDelay units.Duration
}

// DefaultConfig returns the Fig. 16-calibrated latency model.
func DefaultConfig() Config {
	return Config{
		ArpDelayMin: 2200 * units.Microsecond,
		ArpDelayMax: 3100 * units.Microsecond,
		OFDelayMin:  3700 * units.Microsecond,
		OFDelayMax:  8500 * units.Microsecond,
		SettleDelay: 1 * units.Millisecond,
	}
}

// Controller wires the network together.
type Controller struct {
	eng      *sim.Engine
	net      *topo.Network
	cfg      Config
	rng      *rand.Rand
	switches []*switchsim.Switch
	hosts    []*tcpsim.Host

	collectors []*core.Collector // indexed by switch, nil entries allowed

	subs []func(ev core.CongestionEvent)

	// initialTree records the PAST tree each destination's base route
	// uses this run (PAST assigns a random spanning tree per address).
	initialTree []int

	// OnReroute observes every actuation at decision time (before the
	// control-channel delay), letting experiments measure response
	// latency end to end.
	OnReroute func(now units.Time, flow packet.FlowKey, srcHost, dstHost, tree int, viaARP bool)

	// Statistics.
	ARPReroutes int64
	OFReroutes  int64
	Events      int64

	met *ctrlMetrics
}

// New creates a controller over an assembled data plane. The switches and
// hosts slices must be indexed consistently with net.
func New(eng *sim.Engine, net *topo.Network, switches []*switchsim.Switch, hosts []*tcpsim.Host, cfg Config, rng *rand.Rand) *Controller {
	if rng == nil {
		panic("controller: need a deterministic rng")
	}
	c := &Controller{
		eng:        eng,
		net:        net,
		cfg:        cfg,
		rng:        rng,
		switches:   switches,
		hosts:      hosts,
		collectors: make([]*core.Collector, len(switches)),
		met:        newCtrlMetrics(),
	}
	return c
}

// Network returns the topology.
func (c *Controller) Network() *topo.Network { return c.net }

// Engine returns the simulation engine.
func (c *Controller) Engine() *sim.Engine { return c.eng }

// InstallRoutes programs every switch with the MAC entries of all routing
// trees, the egress shadow-MAC restore rules, edge-port marking, and —
// when mirror is true — oversubscribed mirroring of every data port to
// the switch's monitor port. initialTrees assigns each destination's
// base route (PAST picks one tree per address); nil means tree 0
// everywhere.
func (c *Controller) InstallRoutes(initialTrees []int, mirror bool) {
	if initialTrees == nil {
		initialTrees = make([]int, c.net.NumHosts())
	}
	if len(initialTrees) != c.net.NumHosts() {
		panic(fmt.Sprintf("controller: %d initial trees for %d hosts", len(initialTrees), c.net.NumHosts()))
	}
	c.initialTree = initialTrees
	for s, sw := range c.switches {
		for mac, port := range c.net.MACEntries(s) {
			sw.InstallMAC(mac, port)
		}
		for shadow, real := range c.net.EgressRewrites(s) {
			sw.InstallRewrite(shadow, real)
		}
		for p, ep := range c.net.Ports[s] {
			if ep.Kind == topo.ToHost {
				sw.SetEdgePort(p, true)
			}
		}
		if mirror && c.net.MonitorPort[s] >= 0 {
			sw.EnableMirror(c.net.MonitorPort[s], nil)
		}
	}
	// Point every host's ARP cache at each destination's assigned tree.
	for i, h := range c.hosts {
		for d := 0; d < c.net.NumHosts(); d++ {
			if d == i {
				continue
			}
			h.SetNeighbor(topo.HostIP(d), topo.ShadowMAC(d, initialTrees[d]))
		}
	}
}

// InitialTree returns the PAST tree assigned to destination d this run.
func (c *Controller) InitialTree(d int) int { return c.initialTree[d] }

// AttachCollector binds a collector to switch s: it receives the routing
// oracle and its congestion events are forwarded to subscribers.
func (c *Controller) AttachCollector(s int, col *core.Collector) {
	c.collectors[s] = col
	col.SetPortMapper(c.Mapper(s))
	col.Subscribe(c.DeliverEvent)
}

// Mapper returns the routing oracle for switch s — the state a
// supervisor re-shares with every replacement collector it builds
// (§3.2.1's controller→collector routing sync).
func (c *Controller) Mapper(s int) core.PortMapper { return NewSwitchMapper(c.net, s) }

// DeliverEvent accepts one congestion event into the controller: it is
// counted and fanned out to subscribers. Direct-attached collectors
// call it synchronously; supervised collectors route events through a
// Deliverer so partitions and delays surface as retries instead of
// silent loss.
func (c *Controller) DeliverEvent(ev core.CongestionEvent) {
	c.Events++
	for _, fn := range c.subs {
		fn(ev)
	}
}

// Collector returns switch s's collector, or nil.
func (c *Controller) Collector(s int) *core.Collector { return c.collectors[s] }

// Subscribe registers an application for congestion events from any
// collector.
func (c *Controller) Subscribe(fn func(ev core.CongestionEvent)) {
	c.subs = append(c.subs, fn)
}

// Switch returns switch s.
func (c *Controller) Switch(s int) *switchsim.Switch { return c.switches[s] }

// Host returns host h.
func (c *Controller) Host(h int) *tcpsim.Host { return c.hosts[h] }

func (c *Controller) delay(lo, hi units.Duration) units.Duration {
	if hi <= lo {
		return lo
	}
	return lo + units.Duration(c.rng.Int63n(int64(hi-lo)))
}

// RerouteARP repoints srcHost's ARP entry for dstHost at the shadow MAC
// of tree, by sending a spoofed unicast ARP request through the source's
// edge switch (§6.2). The ARP packet itself traverses the (possibly
// congested) data network.
func (c *Controller) RerouteARP(now units.Time, srcHost, dstHost, tree int) {
	c.ARPReroutes++
	if c.OnReroute != nil {
		c.OnReroute(now, packet.FlowKey{}, srcHost, dstHost, tree, true)
	}
	d := c.delay(c.cfg.ArpDelayMin, c.cfg.ArpDelayMax)
	c.met.observe(true, d)
	at := now.Add(d)
	c.eng.Schedule(at, sim.Callback(func(fire units.Time) {
		attach := c.net.Hosts[srcHost]
		sw := c.switches[attach.Switch]
		pkt := c.eng.NewPacket()
		pkt.Kind = sim.KindARP
		pkt.SrcMAC = packet.MAC{0x02, 0xff, 0, 0, 0, 0xfe} // controller's MAC
		pkt.DstMAC = c.hosts[srcHost].MAC()
		pkt.WireLen = packet.EthernetHeaderLen + packet.ARPBodyLen
		pkt.ARP = packet.ARP{
			Op:        packet.ARPRequest,
			SenderMAC: topo.ShadowMAC(dstHost, tree),
			SenderIP:  topo.HostIP(dstHost),
			TargetMAC: c.hosts[srcHost].MAC(),
			TargetIP:  topo.HostIP(srcHost),
		}
		pkt.SentAt = fire
		sw.Inject(fire, attach.Port, pkt)
	}), nil)
}

// RerouteOF installs a destination-MAC rewrite rule for the flow at the
// source's ingress switch after the modelled rule-installation latency.
func (c *Controller) RerouteOF(now units.Time, flow packet.FlowKey, srcHost, dstHost, tree int) {
	c.OFReroutes++
	if c.OnReroute != nil {
		c.OnReroute(now, flow, srcHost, dstHost, tree, false)
	}
	d := c.delay(c.cfg.OFDelayMin, c.cfg.OFDelayMax)
	c.met.observe(false, d)
	at := now.Add(d)
	c.eng.Schedule(at, sim.Callback(func(fire units.Time) {
		attach := c.net.Hosts[srcHost]
		sw := c.switches[attach.Switch]
		sw.InstallFlowRule(switchsim.FlowRule{
			Match:      flow,
			RewriteDst: true,
			NewDst:     topo.ShadowMAC(dstHost, tree),
		})
	}), nil)
}

// SwitchMapper is the routing oracle a collector uses to infer ports from
// sampled packets (§3.2.1): the controller shares each switch's MAC table
// and the topology.
type SwitchMapper struct {
	net *topo.Network
	sw  int
	out map[uint64]int32
}

// NewSwitchMapper builds the oracle for switch s.
func NewSwitchMapper(net *topo.Network, s int) *SwitchMapper {
	m := &SwitchMapper{net: net, sw: s, out: make(map[uint64]int32)}
	for mac, port := range net.MACEntries(s) {
		m.out[mac.U64()] = int32(port)
	}
	return m
}

// OutputPort implements core.PortMapper.
func (m *SwitchMapper) OutputPort(dst packet.MAC) (int, bool) {
	p, ok := m.out[dst.U64()]
	return int(p), ok
}

// InputPort implements core.PortMapper: walk the destination tree path
// from the source host and report the port the packet entered this
// switch on.
func (m *SwitchMapper) InputPort(src, dst packet.MAC) (int, bool) {
	srcHost, _, ok := topo.TreeOfMAC(src)
	if !ok || srcHost < 0 || srcHost >= m.net.NumHosts() {
		return 0, false
	}
	dstHost, tree, ok := topo.TreeOfMAC(dst)
	if !ok || tree >= m.net.NumTrees || dstHost < 0 || dstHost >= m.net.NumHosts() || srcHost == dstHost {
		return 0, false
	}
	attach := m.net.Hosts[srcHost]
	if attach.Switch == m.sw {
		return attach.Port, true
	}
	for _, l := range m.net.PathFor(srcHost, dstHost, tree) {
		ep := m.net.Ports[l.Switch][l.Port]
		if ep.Kind == topo.ToSwitch && ep.Switch == m.sw {
			return ep.Port, true
		}
	}
	return 0, false
}
