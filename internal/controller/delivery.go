package controller

import (
	"context"
	"math/rand"
	"time"

	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/sim"
	"planck/internal/units"
)

// BackoffPolicy tunes retry behavior for collector→controller event
// delivery. Zero fields take defaults chosen for the millisecond
// control loop: a congestion event is worthless after a few tens of
// milliseconds (the congestion either cleared or TCP collapsed), so
// the policy gives up quickly rather than queueing stale events.
type BackoffPolicy struct {
	// Base is the delay before the first retry (default 500µs).
	Base units.Duration
	// Max caps the per-retry delay (default 8ms).
	Max units.Duration
	// Factor multiplies the delay each retry (default 2).
	Factor float64
	// Jitter is the fraction of each delay that is randomized — the
	// delay is scaled by a uniform draw from [1−Jitter/2, 1+Jitter/2] —
	// so synchronized collectors do not retry in lockstep against a
	// recovering controller (default 0.2).
	Jitter float64
	// MaxAttempts bounds total sends, the first included (default 6).
	MaxAttempts int
}

func (p *BackoffPolicy) fillDefaults() {
	if p.Base == 0 {
		p.Base = 500 * units.Microsecond
	}
	if p.Max == 0 {
		p.Max = 8 * units.Millisecond
	}
	if p.Factor == 0 {
		p.Factor = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 6
	}
}

// delayFor returns the jittered backoff before retry number retry
// (1-based), drawing from rng.
func (p *BackoffPolicy) delayFor(retry int, rng *rand.Rand) units.Duration {
	d := float64(p.Base)
	for i := 1; i < retry; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter/2 + p.Jitter*rng.Float64()
	}
	if d < 1 {
		d = 1
	}
	return units.Duration(d)
}

// DeliveryMetrics are the obs instruments of one Deliverer.
type DeliveryMetrics struct {
	Delivered obs.Counter // events that reached the controller
	Retries   obs.Counter // individual re-send attempts
	Abandoned obs.Counter // events dropped after MaxAttempts or cancellation
	// Backoff records the µs slept before each retry.
	Backoff *obs.Histogram
}

// Register exposes the delivery counters on reg under a shared label
// set.
func (m *DeliveryMetrics) Register(reg *obs.Registry, labels ...string) {
	reg.MustRegister("planck_delivery_delivered_total", &m.Delivered, labels...)
	reg.MustRegister("planck_delivery_retries_total", &m.Retries, labels...)
	reg.MustRegister("planck_delivery_abandoned_total", &m.Abandoned, labels...)
	if m.Backoff == nil {
		m.Backoff = obs.NewScaledHistogram(1e-3) // ns observations → µs buckets
	}
	reg.MustRegister("planck_delivery_backoff_us", m.Backoff, labels...)
}

// Deliverer pushes congestion events from a collector to the
// controller with bounded retry and exponential backoff. The transport
// seams are injected so the same state machine runs inside the
// discrete-event simulator (After = engine timer, cancellation = run
// teardown) and on a live host (After = time.AfterFunc, cancellation =
// context):
//
//	send   attempts one delivery; a non-nil error means "retry later"
//	after  schedules fn once, d from now
//	cancelled  reports that the owner gave up (context done, lab torn
//	           down); checked before every attempt
//
// Deliverer is not safe for concurrent use: in the lab every method
// runs on the engine goroutine, live deployments serialize on the
// collector's event goroutine.
type Deliverer struct {
	policy    BackoffPolicy
	rng       *rand.Rand
	send      func(now units.Time, ev core.CongestionEvent) error
	after     func(d units.Duration, fn func(now units.Time))
	cancelled func() bool

	// Metrics may be read at any time.
	Metrics DeliveryMetrics

	// Tracer, when set, records each retry's backoff and terminal
	// abandonment on the event's control-loop span.
	Tracer *trace.Tracer

	inFlight int
}

// NewDeliverer builds a deliverer over explicit seams. seed feeds the
// jitter PRNG; rng state is private to the deliverer so retries never
// perturb data-plane determinism.
func NewDeliverer(policy BackoffPolicy, seed int64,
	send func(now units.Time, ev core.CongestionEvent) error,
	after func(d units.Duration, fn func(now units.Time)),
	cancelled func() bool) *Deliverer {
	policy.fillDefaults()
	if cancelled == nil {
		cancelled = func() bool { return false }
	}
	return &Deliverer{
		policy:    policy,
		rng:       rand.New(rand.NewSource(seed)),
		send:      send,
		after:     after,
		cancelled: cancelled,
	}
}

// NewSimDeliverer wires a deliverer to a simulation engine's timer
// wheel: retries fire as engine events on the engine goroutine.
func NewSimDeliverer(eng *sim.Engine, policy BackoffPolicy, seed int64,
	send func(now units.Time, ev core.CongestionEvent) error,
	cancelled func() bool) *Deliverer {
	return NewDeliverer(policy, seed, send,
		func(d units.Duration, fn func(now units.Time)) {
			eng.After(d, sim.Callback(fn), nil)
		}, cancelled)
}

// NewWallDeliverer wires a deliverer to the wall clock and a context:
// retries fire from time.AfterFunc, timestamps are monotonic
// nanoseconds since process start, and ctx cancellation abandons every
// event still in flight at its next attempt.
func NewWallDeliverer(ctx context.Context, policy BackoffPolicy, seed int64,
	send func(now units.Time, ev core.CongestionEvent) error) *Deliverer {
	return NewDeliverer(policy, seed, send,
		func(d units.Duration, fn func(now units.Time)) {
			time.AfterFunc(time.Duration(d), func() { fn(units.Time(obs.Nanos())) })
		},
		func() bool { return ctx.Err() != nil })
}

// InFlight returns how many events are awaiting a retry.
func (d *Deliverer) InFlight() int { return d.inFlight }

// Deliver attempts to hand ev to the controller, retrying per the
// policy. It returns after the first attempt; retries run from the
// injected timer.
func (d *Deliverer) Deliver(now units.Time, ev core.CongestionEvent) {
	d.attempt(now, ev, 1)
}

func (d *Deliverer) attempt(now units.Time, ev core.CongestionEvent, n int) {
	if d.cancelled() {
		d.Metrics.Abandoned.Inc()
		if d.Tracer != nil {
			d.Tracer.Drop(ev.ID, trace.OutcomeAbandoned)
		}
		return
	}
	err := d.send(now, ev)
	if err == nil {
		d.Metrics.Delivered.Inc()
		return
	}
	if n >= d.policy.MaxAttempts {
		d.Metrics.Abandoned.Inc()
		if d.Tracer != nil {
			d.Tracer.Drop(ev.ID, trace.OutcomeAbandoned)
		}
		return
	}
	delay := d.policy.delayFor(n, d.rng)
	d.Metrics.Retries.Inc()
	if d.Tracer != nil {
		d.Tracer.RecordRetry(ev.ID, delay)
	}
	if d.Metrics.Backoff != nil {
		d.Metrics.Backoff.Observe(int64(delay))
	}
	d.inFlight++
	d.after(delay, func(at units.Time) {
		d.inFlight--
		d.attempt(at, ev, n+1)
	})
}
