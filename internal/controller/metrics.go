package controller

import (
	"planck/internal/obs"
	"planck/internal/units"
)

// ctrlMetrics holds the controller's reroute-latency histograms. They
// record the modelled control-channel delay chosen for each actuation
// (the Fig. 16 quantity), in nanoseconds, reported as microseconds.
type ctrlMetrics struct {
	arpDelay    *obs.Histogram
	ofDelay     *obs.Histogram
	mirrorDelay *obs.Histogram
}

func newCtrlMetrics() *ctrlMetrics {
	return &ctrlMetrics{
		arpDelay:    obs.NewScaledHistogram(1e-3),
		ofDelay:     obs.NewScaledHistogram(1e-3),
		mirrorDelay: obs.NewScaledHistogram(1e-3),
	}
}

func (m *ctrlMetrics) observe(viaARP bool, d units.Duration) {
	if viaARP {
		m.arpDelay.Observe(int64(d))
	} else {
		m.ofDelay.Observe(int64(d))
	}
}

// RegisterMetrics exposes the controller's counters and actuation-delay
// histograms in r. The counter gauges read the controller's plain
// fields; like the engine, the controller is single-threaded, so
// snapshots taken mid-run from another goroutine are best-effort.
func (c *Controller) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("planck_controller_arp_reroutes_total", func() float64 { return float64(c.ARPReroutes) })
	r.GaugeFunc("planck_controller_of_reroutes_total", func() float64 { return float64(c.OFReroutes) })
	r.GaugeFunc("planck_controller_congestion_events_total", func() float64 { return float64(c.Events) })
	r.GaugeFunc("planck_controller_mirror_commits_total", func() float64 { return float64(c.MirrorCommits) })
	r.MustRegister("planck_controller_arp_delay_us", c.met.arpDelay)
	r.MustRegister("planck_controller_of_delay_us", c.met.ofDelay)
	r.MustRegister("planck_controller_mirror_delay_us", c.met.mirrorDelay)
}

// ARPDelays returns the histogram of modelled ARP actuation delays (µs).
func (c *Controller) ARPDelays() *obs.Histogram { return c.met.arpDelay }

// OFDelays returns the histogram of modelled OpenFlow rule-install
// delays (µs).
func (c *Controller) OFDelays() *obs.Histogram { return c.met.ofDelay }
