package controller

import (
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
)

// SimActuator realizes routing snapshots on the simulated data plane:
// it is the only place the controller package touches concrete
// switchsim/tcpsim types. A deployment would swap in an OpenFlow
// driver implementing routing.Actuator without touching the
// controller, TE, or the collectors.
type SimActuator struct {
	eng      *sim.Engine
	net      *topo.Network
	switches []*switchsim.Switch
	hosts    []*tcpsim.Host
}

var _ routing.Actuator = (*SimActuator)(nil)

// NewSimActuator wires the actuator over an assembled data plane. The
// switches and hosts slices must be indexed consistently with net.
func NewSimActuator(eng *sim.Engine, net *topo.Network, switches []*switchsim.Switch, hosts []*tcpsim.Host) *SimActuator {
	return &SimActuator{eng: eng, net: net, switches: switches, hosts: hosts}
}

// Switch returns switch s.
func (a *SimActuator) Switch(s int) *switchsim.Switch { return a.switches[s] }

// Host returns host h.
func (a *SimActuator) Host(h int) *tcpsim.Host { return a.hosts[h] }

// InstallSnapshot implements routing.Actuator: program every switch
// with the MAC entries of all routing trees, the egress shadow-MAC
// restore rules, edge-port marking, and — when the snapshot says so —
// oversubscribed mirroring of every data port to the switch's monitor
// port; then point every host's ARP cache at each destination's
// currently assigned tree.
func (a *SimActuator) InstallSnapshot(snap *routing.Snapshot) {
	for s, sw := range a.switches {
		sw.InstallMACs(snap.MACEntries(s))
		sw.InstallRewrites(snap.EgressRewrites(s))
		for p, ep := range a.net.Ports[s] {
			if ep.Kind == topo.ToHost {
				sw.SetEdgePort(p, true)
			}
		}
		if snap.Mirror() && a.net.MonitorPort[s] >= 0 {
			sw.EnableMirror(a.net.MonitorPort[s], nil)
		}
	}
	// Per-port mirror overrides (governor sheds/tunes) are part of the
	// snapshot too: a full install must reproduce them, so a reinstalled
	// data plane matches the committed state bit for bit.
	snap.EachMirrorOverride(func(s, port int, cfg routing.MirrorPortConfig) {
		sw := a.switches[s]
		sw.SetPortMirrored(port, cfg.Mirrored)
		sw.SetPortMirrorRate(a.eng.Now(), port, cfg.TargetRate)
	})
	for i, h := range a.hosts {
		for d := 0; d < a.net.NumHosts(); d++ {
			if d == i {
				continue
			}
			h.SetNeighbor(topo.HostIP(d), topo.ShadowMAC(d, snap.PairTree(i, d)))
		}
	}
}

// Apply implements routing.Actuator: actuate one snapshot-diff entry
// at time fire. The two change kinds map onto the paper's two reroute
// mechanisms (§6.2) — this is the only point where they differ.
func (a *SimActuator) Apply(fire units.Time, ch routing.Change) {
	switch ch.Kind {
	case routing.ChangePairTree:
		// Spoofed unicast ARP: repoint Src's ARP entry for Dst at the
		// shadow MAC of Tree. The ARP packet itself traverses the
		// (possibly congested) data network from Src's edge switch.
		attach := a.net.Hosts[ch.Src]
		sw := a.switches[attach.Switch]
		pkt := a.eng.NewPacket()
		pkt.Kind = sim.KindARP
		pkt.SrcMAC = packet.MAC{0x02, 0xff, 0, 0, 0, 0xfe} // controller's MAC
		pkt.DstMAC = a.hosts[ch.Src].MAC()
		pkt.WireLen = packet.EthernetHeaderLen + packet.ARPBodyLen
		pkt.ARP = packet.ARP{
			Op:        packet.ARPRequest,
			SenderMAC: topo.ShadowMAC(ch.Dst, ch.Tree),
			SenderIP:  topo.HostIP(ch.Dst),
			TargetMAC: a.hosts[ch.Src].MAC(),
			TargetIP:  topo.HostIP(ch.Src),
		}
		pkt.SentAt = fire
		sw.Inject(fire, attach.Port, pkt)
	case routing.ChangeFlowTree:
		// OpenFlow rewrite rule at the flow's ingress switch: relabel
		// the flow's packets onto Tree's shadow MAC for Dst.
		attach := a.net.Hosts[ch.Src]
		sw := a.switches[attach.Switch]
		sw.InstallFlowRule(switchsim.FlowRule{
			Match:      ch.Flow,
			RewriteDst: true,
			NewDst:     topo.ShadowMAC(ch.Dst, ch.Tree),
		})
	case routing.ChangeMirrorPort:
		// Management-plane mirror reconfiguration: shed/restore the port
		// from the mirror session and install or clear its per-port
		// sample-rate bucket.
		sw := a.switches[ch.Switch]
		sw.SetPortMirrored(ch.Port, ch.Mirror.Mirrored)
		sw.SetPortMirrorRate(fire, ch.Port, ch.Mirror.TargetRate)
	}
}
