package controller

import (
	"context"
	"errors"
	"testing"

	"planck/internal/core"
	"planck/internal/sim"
	"planck/internal/units"
)

// fakeTimer collects scheduled retries so tests can fire them by hand
// with full control of virtual time.
type fakeTimer struct {
	now   units.Time
	queue []struct {
		at units.Time
		fn func(units.Time)
	}
}

func (ft *fakeTimer) after(d units.Duration, fn func(units.Time)) {
	ft.queue = append(ft.queue, struct {
		at units.Time
		fn func(units.Time)
	}{ft.now.Add(d), fn})
}

func (ft *fakeTimer) fireNext() bool {
	if len(ft.queue) == 0 {
		return false
	}
	e := ft.queue[0]
	ft.queue = ft.queue[1:]
	ft.now = e.at
	e.fn(e.at)
	return true
}

var errDown = errors.New("partitioned")

func TestDelivererRetriesUntilSuccess(t *testing.T) {
	ft := &fakeTimer{}
	fails := 3
	var deliveredAt []units.Time
	send := func(now units.Time, ev core.CongestionEvent) error {
		if fails > 0 {
			fails--
			return errDown
		}
		deliveredAt = append(deliveredAt, now)
		return nil
	}
	d := NewDeliverer(BackoffPolicy{Base: units.Millisecond, Factor: 2, Jitter: 0.2, MaxAttempts: 6}, 1, send, ft.after, nil)
	d.Deliver(0, core.CongestionEvent{Port: 1})
	for ft.fireNext() {
	}
	if len(deliveredAt) != 1 {
		t.Fatalf("delivered %d times, want exactly 1", len(deliveredAt))
	}
	if got := d.Metrics.Delivered.Value(); got != 1 {
		t.Errorf("Delivered = %d, want 1", got)
	}
	if got := d.Metrics.Retries.Value(); got != 3 {
		t.Errorf("Retries = %d, want 3", got)
	}
	if got := d.Metrics.Abandoned.Value(); got != 0 {
		t.Errorf("Abandoned = %d, want 0", got)
	}
	if d.InFlight() != 0 {
		t.Errorf("InFlight = %d after settling", d.InFlight())
	}
	// Three retries with Base=1ms, Factor=2, Jitter=0.2: total backoff in
	// [0.9+1.8+3.6, 1.1+2.2+4.4] ms.
	if at := deliveredAt[0]; at < units.Time(6300*units.Microsecond) || at > units.Time(7700*units.Microsecond) {
		t.Errorf("delivery landed at %v, outside the jittered backoff envelope", at)
	}
}

func TestDelivererAbandonsAfterMaxAttempts(t *testing.T) {
	ft := &fakeTimer{}
	attempts := 0
	send := func(units.Time, core.CongestionEvent) error { attempts++; return errDown }
	d := NewDeliverer(BackoffPolicy{MaxAttempts: 4}, 2, send, ft.after, nil)
	d.Deliver(0, core.CongestionEvent{})
	for ft.fireNext() {
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want MaxAttempts = 4", attempts)
	}
	if got := d.Metrics.Abandoned.Value(); got != 1 {
		t.Errorf("Abandoned = %d, want 1", got)
	}
	if got := d.Metrics.Retries.Value(); got != 3 {
		t.Errorf("Retries = %d, want 3", got)
	}
}

func TestDelivererBackoffCapsAtMax(t *testing.T) {
	p := BackoffPolicy{Base: units.Millisecond, Max: 3 * units.Millisecond, Factor: 10, Jitter: -1, MaxAttempts: 5}
	p.fillDefaults()
	// Jitter<0 is not meaningful; neutralize it for exactness.
	p.Jitter = 0
	d := NewDeliverer(p, 3, nil, nil, nil)
	if got := p.delayFor(1, d.rng); got != units.Millisecond {
		t.Errorf("retry 1 delay = %v, want Base", got)
	}
	if got := p.delayFor(2, d.rng); got != 3*units.Millisecond {
		t.Errorf("retry 2 delay = %v, want Max cap", got)
	}
	if got := p.delayFor(4, d.rng); got != 3*units.Millisecond {
		t.Errorf("retry 4 delay = %v, want Max cap", got)
	}
}

func TestDelivererContextCancelAbandons(t *testing.T) {
	ft := &fakeTimer{}
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	send := func(units.Time, core.CongestionEvent) error { attempts++; return errDown }
	d := NewDeliverer(BackoffPolicy{MaxAttempts: 10}, 4, send, ft.after,
		func() bool { return ctx.Err() != nil })
	d.Deliver(0, core.CongestionEvent{})
	ft.fireNext() // one retry happens live…
	cancel()      // …then the owner gives up
	for ft.fireNext() {
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (initial + one retry before cancel)", attempts)
	}
	if got := d.Metrics.Abandoned.Value(); got != 1 {
		t.Errorf("Abandoned = %d, want 1", got)
	}
}

func TestDelivererDeterministicJitter(t *testing.T) {
	run := func(seed int64) []units.Duration {
		p := BackoffPolicy{}
		p.fillDefaults()
		d := NewDeliverer(p, seed, nil, nil, nil)
		var out []units.Duration
		for i := 1; i <= 5; i++ {
			out = append(out, p.delayFor(i, d.rng))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
}

func TestSimDelivererFiresOnEngine(t *testing.T) {
	eng := sim.New()
	downUntil := units.Time(5 * units.Millisecond)
	var deliveredAt units.Time
	send := func(now units.Time, ev core.CongestionEvent) error {
		if now.Before(downUntil) {
			return errDown
		}
		deliveredAt = now
		return nil
	}
	d := NewSimDeliverer(eng, BackoffPolicy{Base: units.Millisecond, MaxAttempts: 10}, 5, send, nil)
	d.Deliver(eng.Now(), core.CongestionEvent{Port: 2})
	eng.RunUntil(units.Time(50 * units.Millisecond))
	if deliveredAt == 0 {
		t.Fatalf("event never delivered through the engine timer (retries=%d abandoned=%d)",
			d.Metrics.Retries.Value(), d.Metrics.Abandoned.Value())
	}
	if deliveredAt.Before(downUntil) {
		t.Fatalf("delivered at %v while the channel was still down", deliveredAt)
	}
	if d.Metrics.Retries.Value() == 0 {
		t.Error("expected at least one retry before the partition healed")
	}
}
