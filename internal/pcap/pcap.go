// Package pcap reads and writes classic libpcap capture files, in both
// microsecond and nanosecond timestamp resolution. Planck's vantage-point
// monitoring application (paper §6.1) dumps collector sample rings to pcap
// so that standard tools (tcpdump, wireshark) can inspect what a switch
// actually forwarded.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"planck/internal/units"
)

// Magic numbers (little-endian on write; reader accepts both endiannesses).
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkTypeEthernet is the DLT_EN10MB link type.
const LinkTypeEthernet = 1

const (
	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// ErrBadMagic is returned when a file does not start with a pcap magic.
var ErrBadMagic = errors.New("pcap: bad magic")

// Record is one captured packet.
type Record struct {
	// Time is the capture timestamp on the simulation's virtual clock.
	Time units.Time
	// WireLen is the original packet length on the wire.
	WireLen int
	// Data is the captured bytes (possibly truncated to a snap length).
	Data []byte
}

// Writer emits a pcap stream. Create with NewWriter, then call
// WriteRecord for each packet and Flush before closing the destination.
type Writer struct {
	w     *bufio.Writer
	nanos bool
	snap  int
	hdr   [recordHeaderLen]byte
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithNanosecondResolution selects the nanosecond-magic variant.
func WithNanosecondResolution() WriterOption { return func(w *Writer) { w.nanos = true } }

// WithSnapLen truncates written packets to n bytes (the header still
// records the true wire length).
func WithSnapLen(n int) WriterOption { return func(w *Writer) { w.snap = n } }

// NewWriter writes a pcap file header to dst and returns a Writer.
func NewWriter(dst io.Writer, opts ...WriterOption) (*Writer, error) {
	w := &Writer{w: bufio.NewWriter(dst), snap: 65535}
	for _, o := range opts {
		o(w)
	}
	var hdr [fileHeaderLen]byte
	magic := uint32(MagicMicroseconds)
	if w.nanos {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(w.snap))
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write file header: %w", err)
	}
	return w, nil
}

// WriteRecord appends one packet.
func (w *Writer) WriteRecord(r Record) error {
	secs := uint32(int64(r.Time) / int64(units.Second))
	rem := int64(r.Time) % int64(units.Second)
	var frac uint32
	if w.nanos {
		frac = uint32(rem)
	} else {
		frac = uint32(rem / 1000)
	}
	data := r.Data
	if len(data) > w.snap {
		data = data[:w.snap]
	}
	wire := r.WireLen
	if wire == 0 {
		wire = len(r.Data)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], secs)
	binary.LittleEndian.PutUint32(w.hdr[4:8], frac)
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(wire))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Flush writes any buffered data to the destination.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses a pcap stream.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nanos   bool
	snap    int
	link    uint32
	hdr     [recordHeaderLen]byte
	scratch []byte
}

// NewReader parses the file header from src and returns a Reader.
func NewReader(src io.Reader) (*Reader, error) {
	r := &Reader{r: bufio.NewReader(src)}
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read file header: %w", err)
	}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == MagicMicroseconds:
		r.order = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		r.order, r.nanos = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		r.order = binary.BigEndian
	case magicBE == MagicNanoseconds:
		r.order, r.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: magic %#08x: %w", magicLE, ErrBadMagic)
	}
	r.snap = int(r.order.Uint32(hdr[16:20]))
	r.link = r.order.Uint32(hdr[20:24])
	return r, nil
}

// LinkType returns the file's data link type.
func (r *Reader) LinkType() uint32 { return r.link }

// SnapLen returns the file's snap length.
func (r *Reader) SnapLen() int { return r.snap }

// Next returns the next record, or io.EOF at end of stream. The returned
// Data slice is only valid until the following Next call.
func (r *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	secs := int64(r.order.Uint32(r.hdr[0:4]))
	frac := int64(r.order.Uint32(r.hdr[4:8]))
	caplen := int(r.order.Uint32(r.hdr[8:12]))
	wire := int(r.order.Uint32(r.hdr[12:16]))
	if caplen < 0 || caplen > 1<<26 {
		return Record{}, fmt.Errorf("pcap: unreasonable capture length %d", caplen)
	}
	if cap(r.scratch) < caplen {
		r.scratch = make([]byte, caplen)
	}
	data := r.scratch[:caplen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: read %d-byte record: %w", caplen, err)
	}
	ns := frac
	if !r.nanos {
		ns *= 1000
	}
	return Record{
		Time:    units.Time(secs*int64(units.Second) + ns),
		WireLen: wire,
		Data:    data,
	}, nil
}
