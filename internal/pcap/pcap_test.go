package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"

	"planck/internal/units"
)

func roundTrip(t *testing.T, opts ...WriterOption) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	type rec struct {
		tm   units.Time
		data []byte
	}
	var recs []rec
	var tm units.Time
	for i := 0; i < 200; i++ {
		tm = tm.Add(units.Duration(rng.Int63n(int64(units.Millisecond))))
		data := make([]byte, 20+rng.Intn(1500))
		rng.Read(data)
		recs = append(recs, rec{tm, data})
		if err := w.WriteRecord(Record{Time: tm, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type %d", r.LinkType())
	}
	nanos := false
	for _, o := range opts {
		w2 := &Writer{}
		o(w2)
		if w2.nanos {
			nanos = true
		}
	}
	for i := 0; ; i++ {
		got, err := r.Next()
		if err == io.EOF {
			if i != len(recs) {
				t.Fatalf("got %d records, want %d", i, len(recs))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := recs[i]
		if !bytes.Equal(got.Data, want.data) {
			t.Fatalf("record %d data mismatch", i)
		}
		if got.WireLen != len(want.data) {
			t.Fatalf("record %d wirelen %d", i, got.WireLen)
		}
		wantT := want.tm
		if !nanos {
			wantT = wantT / 1000 * 1000 // µs truncation
		}
		if got.Time != wantT {
			t.Fatalf("record %d time %v want %v", i, got.Time, wantT)
		}
	}
}

func TestRoundTripMicro(t *testing.T) { roundTrip(t) }
func TestRoundTripNano(t *testing.T)  { roundTrip(t, WithNanosecondResolution()) }

func TestSnapLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithSnapLen(64))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i)
	}
	if err := w.WriteRecord(Record{Time: 1000, Data: data}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 64 || rec.WireLen != 1500 {
		t.Fatalf("caplen %d wirelen %d", len(rec.Data), rec.WireLen)
	}
	if !bytes.Equal(rec.Data, data[:64]) {
		t.Fatal("snap data mismatch")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian µs file with one 4-byte record.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 3)      // 3 s
	binary.BigEndian.PutUint32(rec[4:8], 500000) // 0.5 s in µs
	binary.BigEndian.PutUint32(rec[8:12], 4)     // caplen
	binary.BigEndian.PutUint32(rec[12:16], 1500) // wirelen
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != units.Time(3500*units.Millisecond) || got.WireLen != 1500 {
		t.Fatalf("record %+v", got)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteRecord(Record{Time: 0, Data: []byte{1, 2, 3}})
	w.Flush()
	b := buf.Bytes()[:buf.Len()-2] // cut the payload short
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record: err=%v", err)
	}
}
