package netflow

import (
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

func key(i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4{10, 0, 0, byte(i)}, DstIP: packet.IPv4{10, 0, 1, 1},
		SrcPort: uint16(1000 + i), DstPort: 80, Proto: packet.IPProtocolTCP,
	}
}

const sec = units.Duration(units.Second)

func TestCacheAccumulates(t *testing.T) {
	c := New(DefaultConfig(), nil)
	for i := 0; i < 100; i++ {
		c.Observe(units.Time(i*1000), key(1), 1500)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
	c.Flush()
	if c.Exports != 1 {
		t.Fatalf("exports %d", c.Exports)
	}
}

func TestInactiveTimeoutDelaysVisibility(t *testing.T) {
	// §2.3's point: the collector hears about a flow only after the
	// inactive timeout — seconds after the flow ended.
	var got []Record
	c := New(Config{Entries: 100, ActiveTimeout: 60 * sec, InactiveTimeout: 15 * sec},
		func(r Record) { got = append(got, r) })

	// A 100 ms flow at t=0.
	for i := 0; i < 1000; i++ {
		c.Observe(units.Time(i*100*1000), key(1), 1500)
	}
	// Sweeps before the timeout export nothing.
	c.Sweep(units.Time(10 * sec))
	if len(got) != 0 {
		t.Fatalf("exported %d records before inactive timeout", len(got))
	}
	c.Sweep(units.Time(16 * sec))
	if len(got) != 1 {
		t.Fatalf("exported %d records after timeout", len(got))
	}
	r := got[0]
	if r.Reason != "inactive" || r.Packets != 1000 || r.Bytes != 1500*1000 {
		t.Fatalf("record %+v", r)
	}
	// Visibility latency: flow ended at ~0.1 s, report at 16 s.
	if lag := units.Time(16 * sec).Sub(r.Last); lag < 15*sec {
		t.Fatalf("visibility lag %v", lag)
	}
}

func TestActiveTimeoutReportsLongFlows(t *testing.T) {
	var got []Record
	c := New(Config{Entries: 10, ActiveTimeout: 1 * sec, InactiveTimeout: 15 * sec},
		func(r Record) { got = append(got, r) })
	// A 2.5 s continuous flow: two active-timeout exports.
	for i := 0; i <= 2500; i++ {
		c.Observe(units.Time(units.Duration(i)*units.Millisecond), key(1), 1500)
	}
	if len(got) != 2 {
		t.Fatalf("%d active exports", len(got))
	}
	for _, r := range got {
		if r.Reason != "active" {
			t.Fatalf("reason %q", r.Reason)
		}
		// ≈1 s of 1500 B/ms = 12 Mbps-scale byte counts.
		if r.Bytes < 1400*1000 || r.Bytes > 1600*1000 {
			t.Fatalf("bytes %d", r.Bytes)
		}
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	var got []Record
	c := New(Config{Entries: 50, ActiveTimeout: 60 * sec, InactiveTimeout: 15 * sec},
		func(r Record) { got = append(got, r) })
	// 200 distinct flows through a 50-entry cache.
	for i := 0; i < 200; i++ {
		c.Observe(units.Time(i*1000), key(i), 1500)
	}
	if c.Len() != 50 {
		t.Fatalf("len %d", c.Len())
	}
	if c.Evictions != 150 {
		t.Fatalf("evictions %d", c.Evictions)
	}
	// Evictions export the LRU entry.
	if got[0].Key != key(0) {
		t.Fatalf("first eviction %v", got[0].Key)
	}
}

func TestLRUTouchOrder(t *testing.T) {
	var got []Record
	c := New(Config{Entries: 2, ActiveTimeout: 60 * sec, InactiveTimeout: 15 * sec},
		func(r Record) { got = append(got, r) })
	c.Observe(0, key(1), 100)
	c.Observe(1, key(2), 100)
	c.Observe(2, key(1), 100) // touch 1: key 2 becomes LRU
	c.Observe(3, key(3), 100) // evicts key 2
	if len(got) != 1 || got[0].Key != key(2) {
		t.Fatalf("evicted %+v", got)
	}
}

func TestRecordRate(t *testing.T) {
	r := Record{Bytes: 1_250_000, First: 0, Last: units.Time(units.Millisecond)}
	if got := r.Rate(); got != units.Rate10G {
		t.Fatalf("rate %v", got)
	}
}
