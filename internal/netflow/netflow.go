// Package netflow models the flow-cache measurement pipeline of §2.3: a
// switch keeps a cache of active flows, incrementing counters per packet;
// records reach the collector only when an entry is evicted (cache
// pressure) or times out — and the timeouts are "on the order of
// seconds", which is the latency wall the paper contrasts Planck against.
package netflow

import (
	"container/list"

	"planck/internal/packet"
	"planck/internal/units"
)

// Record is one exported flow observation.
type Record struct {
	Key         packet.FlowKey
	Packets     int64
	Bytes       int64
	First, Last units.Time
	// Reason explains the export: "evict", "active", or "inactive".
	Reason string
}

// Rate returns the record's average rate over its active span.
func (r Record) Rate() units.Rate {
	return units.RateOf(r.Bytes, r.Last.Sub(r.First))
}

// Config sizes the cache, mirroring typical switch defaults.
type Config struct {
	// Entries caps the cache (the G8264-class boxes hold ~1000 flow
	// rules, §2.3).
	Entries int
	// ActiveTimeout exports long-lived flows periodically (Cisco default
	// 30 min; often configured to 60 s).
	ActiveTimeout units.Duration
	// InactiveTimeout exports idle flows (default 15 s).
	InactiveTimeout units.Duration
}

// DefaultConfig reflects §2.3's characterization.
func DefaultConfig() Config {
	return Config{
		Entries:         1000,
		ActiveTimeout:   60 * units.Duration(units.Second),
		InactiveTimeout: 15 * units.Duration(units.Second),
	}
}

type entry struct {
	rec Record
	lru *list.Element
}

// Cache is the switch-side flow cache.
type Cache struct {
	cfg     Config
	entries map[packet.FlowKey]*entry
	lru     *list.List // front = most recently touched; values are FlowKeys

	// Export receives records as they leave the cache.
	Export func(rec Record)

	// Evictions and Exports count cache activity.
	Evictions, Exports int64
}

// New creates a cache.
func New(cfg Config, export func(rec Record)) *Cache {
	if cfg.Entries <= 0 {
		cfg = DefaultConfig()
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[packet.FlowKey]*entry),
		lru:     list.New(),
		Export:  export,
	}
}

// Len returns the number of cached flows.
func (c *Cache) Len() int { return len(c.entries) }

// Observe folds in one forwarded packet.
func (c *Cache) Observe(t units.Time, key packet.FlowKey, wireLen int) {
	if e, ok := c.entries[key]; ok {
		e.rec.Packets++
		e.rec.Bytes += int64(wireLen)
		e.rec.Last = t
		c.lru.MoveToFront(e.lru)
		// Active timeout: long-running flows export-and-reset so the
		// collector hears about them at all.
		if t.Sub(e.rec.First) >= c.cfg.ActiveTimeout {
			c.export(e.rec, "active")
			e.rec.Packets, e.rec.Bytes = 0, 0
			e.rec.First = t
		}
		return
	}
	if len(c.entries) >= c.cfg.Entries {
		c.evictOldest()
	}
	e := &entry{rec: Record{Key: key, Packets: 1, Bytes: int64(wireLen), First: t, Last: t}}
	e.lru = c.lru.PushFront(key)
	c.entries[key] = e
}

// Sweep expires idle entries; call periodically with the current time.
func (c *Cache) Sweep(t units.Time) {
	for el := c.lru.Back(); el != nil; {
		key := el.Value.(packet.FlowKey)
		e := c.entries[key]
		if t.Sub(e.rec.Last) < c.cfg.InactiveTimeout {
			break // LRU order: everything nearer the front is fresher
		}
		prev := el.Prev()
		c.remove(key, "inactive")
		el = prev
	}
}

// Flush exports everything (collector shutdown semantics).
func (c *Cache) Flush() {
	for key := range c.entries {
		c.remove(key, "inactive")
	}
}

func (c *Cache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	c.Evictions++
	c.remove(el.Value.(packet.FlowKey), "evict")
}

func (c *Cache) remove(key packet.FlowKey, reason string) {
	e := c.entries[key]
	if e == nil {
		return
	}
	c.lru.Remove(e.lru)
	delete(c.entries, key)
	c.export(e.rec, reason)
}

func (c *Cache) export(rec Record, reason string) {
	rec.Reason = reason
	c.Exports++
	if c.Export != nil {
		c.Export(rec)
	}
}
