package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"planck/internal/units"
)

type recorder struct {
	times []units.Time
	tags  []int
	tag   int
}

func (r *recorder) Handle(now units.Time, _ *Packet) {
	r.times = append(r.times, now)
	r.tags = append(r.tags, r.tag)
}

func TestEventOrdering(t *testing.T) {
	eng := New()
	var r recorder
	times := []units.Duration{500, 100, 300, 100, 200}
	for _, d := range times {
		eng.After(d, &r, nil)
	}
	eng.Run()
	if len(r.times) != len(times) {
		t.Fatalf("dispatched %d", len(r.times))
	}
	for i := 1; i < len(r.times); i++ {
		if r.times[i] < r.times[i-1] {
			t.Fatalf("out of order at %d: %v < %v", i, r.times[i], r.times[i-1])
		}
	}
	if eng.Now() != 500 {
		t.Fatalf("final time %v", eng.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	eng := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(100, Callback(func(units.Time) { got = append(got, i) }), nil)
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	eng := New()
	var fired bool
	ev := eng.After(100, Callback(func(units.Time) { fired = true }), nil)
	eng.Cancel(ev)
	eng.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	eng := New()
	var count int
	for i := 1; i <= 10; i++ {
		eng.Schedule(units.Time(i*100), Callback(func(units.Time) { count++ }), nil)
	}
	eng.RunUntil(500)
	if count != 5 {
		t.Fatalf("ran %d events", count)
	}
	if eng.Now() != 500 {
		t.Fatalf("clock %v", eng.Now())
	}
	eng.Run()
	if count != 10 {
		t.Fatalf("remaining events: %d", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	eng := New()
	eng.RunUntil(12345)
	if eng.Now() != 12345 {
		t.Fatalf("clock %v", eng.Now())
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	eng := New()
	var at units.Time
	eng.Schedule(100, Callback(func(now units.Time) {
		eng.Schedule(50, Callback(func(now units.Time) { at = now }), nil)
	}), nil)
	eng.Run()
	if at != 100 {
		t.Fatalf("past event ran at %v", at)
	}
}

func TestStop(t *testing.T) {
	eng := New()
	var count int
	for i := 1; i <= 10; i++ {
		eng.Schedule(units.Time(i), Callback(func(units.Time) {
			count++
			if count == 3 {
				eng.Stop()
			}
		}), nil)
	}
	eng.Run()
	if count != 3 {
		t.Fatalf("count %d", count)
	}
}

// Property: an arbitrary schedule dispatches in sorted order and exactly
// once per event.
func TestHeapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := New()
		var r recorder
		want := make([]units.Time, 0, n)
		for i := 0; i < int(n); i++ {
			at := units.Time(rng.Int63n(10000))
			want = append(want, at)
			eng.Schedule(at, &r, nil)
		}
		eng.Run()
		if len(r.times) != len(want) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if r.times[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTicker(t *testing.T) {
	eng := New()
	var ticks []units.Time
	var tk *Ticker
	tk = NewTicker(eng, 100, func(now units.Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			tk.Stop()
		}
	})
	eng.Run()
	if len(ticks) != 5 {
		t.Fatalf("%d ticks", len(ticks))
	}
	for i, at := range ticks {
		if at != units.Time((i+1)*100) {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestPacketPoolReuse(t *testing.T) {
	eng := New()
	p1 := eng.NewPacket()
	p1.PayloadLen = 99
	id1 := p1.ID
	eng.FreePacket(p1)
	p2 := eng.NewPacket()
	if p2.PayloadLen != 0 {
		t.Fatal("pooled packet not zeroed")
	}
	if p2.ID == id1 {
		t.Fatal("packet IDs must be unique")
	}
	if p2.FlowID != -1 {
		t.Fatal("fresh packet FlowID should be -1")
	}
}

func TestClonePacket(t *testing.T) {
	eng := New()
	p := eng.NewPacket()
	p.PayloadLen = 1460
	p.Seq = 77
	c := eng.ClonePacket(p)
	if c.PayloadLen != 1460 || c.Seq != 77 {
		t.Fatal("clone lost fields")
	}
	if c.ID == p.ID {
		t.Fatal("clone shares ID")
	}
}
