package sim

import "planck/internal/units"

// Callback adapts a plain function to the Handler interface for
// non-hot-path scheduling (controller timers, experiment hooks). Packet
// events in the data path should use dedicated handler types instead to
// avoid per-event allocations.
type Callback func(now units.Time)

// Handle implements Handler.
func (c Callback) Handle(now units.Time, _ *Packet) { c(now) }

// Ticker invokes a function at a fixed period until stopped. It is used by
// the polling-based traffic-engineering baselines and the collector's
// poll-batching model.
type Ticker struct {
	eng    *Engine
	period units.Duration
	fn     func(now units.Time)
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period, first firing at now+period.
func NewTicker(eng *Engine, period units.Duration, fn func(now units.Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.ev = eng.After(period, t, nil)
	return t
}

// Handle implements Handler.
func (t *Ticker) Handle(now units.Time, _ *Packet) {
	if t.stop {
		return
	}
	t.fn(now)
	if !t.stop {
		t.ev = t.eng.After(t.period, t, nil)
	}
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.eng.Cancel(t.ev)
}
