package sim

import (
	"fmt"

	"planck/internal/units"
)

// Node is anything that terminates links: hosts, switches, collectors.
type Node interface {
	// Receive is invoked when the last bit of pkt arrives on port.
	// Ownership of pkt transfers to the node.
	Receive(now units.Time, port *Port, pkt *Packet)
	// Name identifies the node in logs and topology dumps.
	Name() string
}

// Outbound supplies a port with packets to transmit. Implementations own
// their queueing discipline (hosts use an unbounded FIFO, switches a
// shared-buffer queue).
type Outbound interface {
	// Dequeue returns the next packet for the wire, or nil when idle.
	Dequeue(now units.Time) *Packet
}

// EthernetOverhead is the per-frame wire overhead beyond the L2 frame:
// preamble (8) + FCS (4) + inter-frame gap (12). A 1500-byte IP MTU thus
// occupies 1538 byte-times, which is what caps TCP goodput at ~9.5 Gbps on
// a 10 Gbps link, matching the testbed numbers in the paper.
const EthernetOverhead = 24

// Port is one end of a full-duplex point-to-point link. Transmission is
// pull-based: when idle the port asks its Outbound source for the next
// packet; sources call Kick after enqueueing to (re)start the pump.
type Port struct {
	eng   *Engine
	owner Node
	peer  *Port
	rate  units.Rate
	delay units.Duration
	src   Outbound

	busy bool

	// Index is owner-defined (switch port number, host NIC index).
	Index int

	// Counters on the transmit and receive sides.
	TxPackets, TxBytes int64
	RxPackets, RxBytes int64

	txDone txDoneEnd
	arrive arriveEnd
}

type txDoneEnd struct{ p *Port }
type arriveEnd struct{ p *Port }

// NewPort creates a port owned by node. Wire it with Connect.
func NewPort(eng *Engine, owner Node, index int, rate units.Rate) *Port {
	p := &Port{eng: eng, owner: owner, Index: index, rate: rate}
	p.txDone.p = p
	p.arrive.p = p
	return p
}

// Connect joins a and b with the given one-way propagation delay. Both
// ports must be unconnected and have the same rate (links are symmetric).
func Connect(a, b *Port, delay units.Duration) {
	if a.peer != nil || b.peer != nil {
		panic("sim: port already connected")
	}
	if a.rate != b.rate {
		panic(fmt.Sprintf("sim: rate mismatch %v vs %v", a.rate, b.rate))
	}
	a.peer, b.peer = b, a
	a.delay, b.delay = delay, delay
}

// SetSource installs the packet supplier feeding this port's transmitter.
func (p *Port) SetSource(src Outbound) { p.src = src }

// Owner returns the node the port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Peer returns the port at the other end of the link, or nil.
func (p *Port) Peer() *Port { return p.peer }

// Rate returns the line rate.
func (p *Port) Rate() units.Rate { return p.rate }

// Busy reports whether a transmission is in progress.
func (p *Port) Busy() bool { return p.busy }

// Kick starts the transmit pump if the port is idle. Call after enqueueing
// to the port's source.
func (p *Port) Kick(now units.Time) {
	if p.busy || p.src == nil || p.peer == nil {
		return
	}
	pkt := p.src.Dequeue(now)
	if pkt == nil {
		return
	}
	p.busy = true
	p.TxPackets++
	p.TxBytes += int64(pkt.WireLen)
	d := p.rate.Serialize(pkt.WireLen + EthernetOverhead)
	p.eng.After(d, &p.txDone, pkt)
}

// Handle on txDoneEnd fires when the last bit leaves the wire: propagate to
// the peer and pull the next packet.
func (t *txDoneEnd) Handle(now units.Time, pkt *Packet) {
	p := t.p
	p.eng.Schedule(now.Add(p.delay), &p.peer.arrive, pkt)
	p.busy = false
	p.Kick(now)
}

// Handle on arriveEnd fires when the packet reaches the far end.
func (a *arriveEnd) Handle(now units.Time, pkt *Packet) {
	p := a.p
	p.RxPackets++
	p.RxBytes += int64(pkt.WireLen)
	p.owner.Receive(now, p, pkt)
}

// Fifo is an unbounded FIFO Outbound, used by host NICs and test fixtures.
type Fifo struct {
	q    []*Packet
	head int
	// Bytes tracks the queued byte total.
	Bytes int64
}

// Enqueue appends a packet.
func (f *Fifo) Enqueue(pkt *Packet) {
	f.q = append(f.q, pkt)
	f.Bytes += int64(pkt.WireLen)
}

// Dequeue implements Outbound.
func (f *Fifo) Dequeue(now units.Time) *Packet {
	if f.head >= len(f.q) {
		return nil
	}
	pkt := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	f.Bytes -= int64(pkt.WireLen)
	if f.head*2 >= len(f.q) && f.head > 32 {
		n := copy(f.q, f.q[f.head:])
		f.q = f.q[:n]
		f.head = 0
	}
	return pkt
}

// Len returns the number of queued packets.
func (f *Fifo) Len() int { return len(f.q) - f.head }
