// Package sim is a deterministic discrete-event simulation engine with an
// int64-nanosecond virtual clock. It exists so that every latency the
// experiments report is a property of the modelled system, not of the Go
// runtime: the paper's phenomena live at 100 µs–10 ms timescales where GC
// pauses and scheduler jitter on a real host would drown the signal.
//
// The engine is single-threaded and allocation-conscious: events are
// pooled, handlers are interfaces satisfied by pointer receivers (no
// closure allocation per packet), and ties are broken by sequence number
// so runs are reproducible bit-for-bit.
package sim

import (
	"fmt"
	"time"

	"planck/internal/units"
)

// Handler is the target of a scheduled event. Packet-carrying events (link
// deliveries, transmit completions) receive the packet; pure timers receive
// nil.
type Handler interface {
	Handle(now units.Time, pkt *Packet)
}

// Event is a scheduled occurrence. Events are owned by the engine's pool;
// user code holds *Event only to Cancel it.
type Event struct {
	at       units.Time
	seq      uint64
	h        Handler
	pkt      *Packet
	canceled bool
	index    int // position in heap, -1 when not queued
}

// Time returns the virtual time at which the event will fire.
func (e *Event) Time() units.Time { return e.at }

// Engine runs the event loop.
type Engine struct {
	now   units.Time
	seq   uint64
	heap  []*Event
	pool  []*Event
	ppool []*Packet

	// Stop aborts Run when set (used by RunUntil internally).
	stopped bool

	// Stats
	dispatched uint64
	// wallStart anchors wall-vs-virtual time telemetry (RegisterMetrics).
	wallStart time.Time
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{heap: make([]*Event, 0, 1024), wallStart: time.Now()}
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Time { return e.now }

// Dispatched returns the number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

func (e *Engine) getEvent() *Event {
	if n := len(e.pool); n > 0 {
		ev := e.pool[n-1]
		e.pool = e.pool[:n-1]
		return ev
	}
	return &Event{}
}

func (e *Engine) putEvent(ev *Event) {
	ev.h = nil
	ev.pkt = nil
	ev.canceled = false
	ev.index = -1
	if len(e.pool) < 4096 {
		e.pool = append(e.pool, ev)
	}
}

// Schedule arranges for h.Handle(at, pkt) to run at virtual time at. If at
// is in the past it fires at the current time (never before). The returned
// event may be canceled until it fires.
func (e *Engine) Schedule(at units.Time, h Handler, pkt *Packet) *Event {
	if h == nil {
		panic("sim: Schedule with nil handler")
	}
	if at < e.now {
		at = e.now
	}
	ev := e.getEvent()
	ev.at = at
	ev.seq = e.seq
	e.seq++
	ev.h = h
	ev.pkt = pkt
	ev.canceled = false
	e.push(ev)
	return ev
}

// After schedules h after duration d from now.
func (e *Engine) After(d units.Duration, h Handler, pkt *Packet) *Event {
	return e.Schedule(e.now.Add(d), h, pkt)
}

// Cancel marks ev so it will not fire. Safe to call on already-fired
// events only if the caller still holds the pointer from Schedule and the
// event has not been recycled; the conventional pattern is to nil out the
// saved pointer in the handler when it fires.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.canceled = true
	}
}

// Step executes the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for {
		ev := e.pop()
		if ev == nil {
			return false
		}
		if ev.canceled {
			e.putEvent(ev)
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", e.now, ev.at))
		}
		e.now = ev.at
		h, pkt := ev.h, ev.pkt
		e.putEvent(ev)
		e.dispatched++
		h.Handle(e.now, pkt)
		return true
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to deadline.
func (e *Engine) RunUntil(deadline units.Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop aborts a Run/RunUntil in progress after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued (possibly canceled) events.
func (e *Engine) Pending() int { return len(e.heap) }

// --- binary heap keyed by (at, seq) ---

func (e *Engine) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.siftUp(ev.index)
}

func (e *Engine) peek() *Event {
	// Skip over canceled events lazily so RunUntil's deadline check sees a
	// live event time.
	for len(e.heap) > 0 && e.heap[0].canceled {
		e.putEvent(e.popRoot())
	}
	if len(e.heap) == 0 {
		return nil
	}
	return e.heap[0]
}

func (e *Engine) pop() *Event {
	if len(e.heap) == 0 {
		return nil
	}
	return e.popRoot()
}

func (e *Engine) popRoot() *Event {
	root := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[0].index = 0
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	root.index = -1
	return root
}

func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(ev, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.heap[i].index = i
		i = parent
	}
	e.heap[i] = ev
	ev.index = i
}

func (e *Engine) siftDown(i int) {
	ev := e.heap[i]
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && e.less(e.heap[right], e.heap[left]) {
			child = right
		}
		if !e.less(e.heap[child], ev) {
			break
		}
		e.heap[i] = e.heap[child]
		e.heap[i].index = i
		i = child
	}
	e.heap[i] = ev
	ev.index = i
}
