package sim

import (
	"testing"

	"planck/internal/units"
)

// sinkNode records arrivals.
type sinkNode struct {
	name    string
	got     []*Packet
	at      []units.Time
	eng     *Engine
	release bool
}

func (s *sinkNode) Name() string { return s.name }
func (s *sinkNode) Receive(now units.Time, _ *Port, pkt *Packet) {
	s.got = append(s.got, pkt)
	s.at = append(s.at, now)
	if s.release {
		s.eng.FreePacket(pkt)
	}
}

func newPair(t *testing.T, eng *Engine, rate units.Rate, delay units.Duration) (*Port, *sinkNode) {
	t.Helper()
	src := &sinkNode{name: "src", eng: eng}
	dst := &sinkNode{name: "dst", eng: eng}
	a := NewPort(eng, src, 0, rate)
	b := NewPort(eng, dst, 0, rate)
	Connect(a, b, delay)
	return a, dst
}

func TestPortTransmitTiming(t *testing.T) {
	eng := New()
	a, dst := newPair(t, eng, units.Rate10G, 500*units.Nanosecond)
	q := &Fifo{}
	a.SetSource(q)

	pkt := eng.NewPacket()
	pkt.WireLen = 1226 // 1226+24 = 1250B = 1µs at 10G
	q.Enqueue(pkt)
	a.Kick(0)
	eng.Run()

	if len(dst.got) != 1 {
		t.Fatalf("arrivals %d", len(dst.got))
	}
	want := units.Time(units.Microsecond + 500*units.Nanosecond)
	if dst.at[0] != want {
		t.Fatalf("arrival at %v, want %v", dst.at[0], want)
	}
	if a.TxPackets != 1 || a.TxBytes != 1226 {
		t.Fatalf("tx counters %d/%d", a.TxPackets, a.TxBytes)
	}
	p2 := a.Peer()
	if p2.RxPackets != 1 || p2.RxBytes != 1226 {
		t.Fatalf("rx counters %d/%d", p2.RxPackets, p2.RxBytes)
	}
}

func TestPortBackToBack(t *testing.T) {
	eng := New()
	a, dst := newPair(t, eng, units.Rate10G, 0)
	q := &Fifo{}
	a.SetSource(q)
	for i := 0; i < 3; i++ {
		pkt := eng.NewPacket()
		pkt.WireLen = 1226
		q.Enqueue(pkt)
	}
	a.Kick(0)
	eng.Run()
	if len(dst.at) != 3 {
		t.Fatalf("arrivals %d", len(dst.at))
	}
	// Serialized back-to-back: 1µs apart.
	for i, want := range []units.Time{1000, 2000, 3000} {
		if dst.at[i] != units.Time(want) {
			t.Fatalf("arrival %d at %v", i, dst.at[i])
		}
	}
}

func TestKickWhileBusyIsSafe(t *testing.T) {
	eng := New()
	a, dst := newPair(t, eng, units.Rate10G, 0)
	q := &Fifo{}
	a.SetSource(q)
	pkt := eng.NewPacket()
	pkt.WireLen = 1226
	q.Enqueue(pkt)
	a.Kick(0)
	// Enqueue a second packet mid-transmission and kick again; the pump
	// must not double-transmit.
	eng.Schedule(500, Callback(func(now units.Time) {
		p := eng.NewPacket()
		p.WireLen = 1226
		q.Enqueue(p)
		a.Kick(now)
	}), nil)
	eng.Run()
	if len(dst.at) != 2 {
		t.Fatalf("arrivals %d", len(dst.at))
	}
	if dst.at[1] != 2000 {
		t.Fatalf("second arrival at %v", dst.at[1])
	}
}

func TestConnectMismatchedRatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	eng := New()
	n := &sinkNode{}
	Connect(NewPort(eng, n, 0, units.Rate1G), NewPort(eng, n, 0, units.Rate10G), 0)
}

func TestFifoDrainsInOrder(t *testing.T) {
	f := &Fifo{}
	eng := New()
	var ids []uint64
	for i := 0; i < 100; i++ {
		p := eng.NewPacket()
		p.WireLen = 100
		ids = append(ids, p.ID)
		f.Enqueue(p)
	}
	if f.Len() != 100 || f.Bytes != 10000 {
		t.Fatalf("len %d bytes %d", f.Len(), f.Bytes)
	}
	for i := 0; i < 100; i++ {
		p := f.Dequeue(0)
		if p == nil || p.ID != ids[i] {
			t.Fatalf("dequeue %d mismatch", i)
		}
	}
	if f.Dequeue(0) != nil || f.Len() != 0 || f.Bytes != 0 {
		t.Fatal("empty fifo invariants")
	}
}
