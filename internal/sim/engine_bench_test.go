package sim

import (
	"testing"

	"planck/internal/units"
)

type nopHandler struct{ n int }

func (h *nopHandler) Handle(units.Time, *Packet) { h.n++ }

// BenchmarkEngineScheduleDispatch measures raw event throughput — the
// simulator's hot loop. The full workloads dispatch hundreds of millions
// of events, so this number bounds experiment wall-clock.
func BenchmarkEngineScheduleDispatch(b *testing.B) {
	eng := New()
	h := &nopHandler{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(units.Time(i), h, nil)
		eng.Step()
	}
	if h.n != b.N {
		b.Fatal("dispatch count")
	}
}

// BenchmarkEngineHeapChurn exercises the heap with a realistic working
// set of pending timers.
func BenchmarkEngineHeapChurn(b *testing.B) {
	eng := New()
	h := &nopHandler{}
	const pending = 4096
	for i := 0; i < pending; i++ {
		eng.Schedule(units.Time(i*1000), h, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now().Add(units.Duration(pending*1000)), h, nil)
		eng.Step()
	}
}

// BenchmarkPacketPool measures pooled allocation round trips.
func BenchmarkPacketPool(b *testing.B) {
	eng := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := eng.NewPacket()
		p.WireLen = 1514
		eng.FreePacket(p)
	}
}

// BenchmarkWireBytesTCP measures frame serialization at the collector
// boundary (runs once per sampled packet).
func BenchmarkWireBytesTCP(b *testing.B) {
	eng := New()
	p := eng.NewPacket()
	p.Kind = KindTCP
	p.PayloadLen = 1460
	p.WireLen = 1514
	buf := make([]byte, 2048)
	b.ReportAllocs()
	b.SetBytes(1514)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := p.WireBytes(buf)
		buf = frame[:cap(frame)]
	}
}
