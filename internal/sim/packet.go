package sim

import (
	"planck/internal/packet"
	"planck/internal/units"
)

// PacketKind discriminates the modelled traffic types.
type PacketKind uint8

// Packet kinds.
const (
	KindTCP PacketKind = iota
	KindUDP
	KindARP
)

// Packet is the simulator's in-flight unit. It carries the parsed header
// fields the endpoints and switches act on; real wire bytes are produced
// only at the collector boundary (see WireBytes), which keeps the hot path
// cheap while still exercising the real codec on every sampled packet.
//
// Packets are pooled by the Engine: obtain with Engine.NewPacket, return
// with Engine.FreePacket exactly once (mirror copies are separate pooled
// clones).
type Packet struct {
	ID   uint64
	Kind PacketKind

	// L2
	SrcMAC, DstMAC packet.MAC

	// L3/L4 for TCP/UDP.
	SrcIP, DstIP     packet.IPv4
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	TCPFlags         uint8
	PayloadLen       int

	// ARP body for KindARP.
	ARP packet.ARP

	// SACK carries selective-acknowledgment blocks in wire sequence
	// space. The testbed's Linux stacks negotiate SACK; without it,
	// window-scale loss bursts degrade into serial timeouts that the
	// paper's near-line-rate workloads never show. The model lets an ACK
	// describe the receiver's complete out-of-order state rather than
	// RFC 2018's three blocks: real stacks converge to the same
	// scoreboard within a few ACKs by rotating blocks, and modelling the
	// rotation adds nothing but convergence noise. Blocks live on the
	// packet struct and are not serialized into WireBytes; the collector
	// never inspects TCP options.
	SACK []SackBlock

	// WireLen is the full frame length in bytes (L2 headers + payload,
	// excluding preamble/IFG/FCS, which the Port adds when serializing).
	WireLen int

	// SentAt is when the sending host handed the packet to its NIC queue
	// (the moment a tcpdump on the sender would stamp it).
	SentAt units.Time

	// EnteredSwitch is stamped by the first switch that enqueues the
	// packet; mirror copies inherit it, giving the collector-side latency
	// measurements their reference point.
	EnteredSwitch units.Time

	// Mirrored marks mirror copies.
	Mirrored bool

	// FlowID attributes the packet to a workload flow (-1 when unknown).
	FlowID int32
}

// SackBlock is one SACK span in wire sequence numbers, [Start, End).
type SackBlock struct {
	Start, End uint32
}

var packetID uint64

// NewPacket returns a zeroed packet from the pool.
func (e *Engine) NewPacket() *Packet {
	var p *Packet
	if n := len(e.ppool); n > 0 {
		p = e.ppool[n-1]
		e.ppool = e.ppool[:n-1]
		*p = Packet{}
	} else {
		p = &Packet{}
	}
	packetID++
	p.ID = packetID
	p.FlowID = -1
	return p
}

// ClonePacket returns a pooled copy of p (used for mirror replication).
func (e *Engine) ClonePacket(p *Packet) *Packet {
	c := e.NewPacket()
	id := c.ID
	*c = *p
	c.ID = id
	return c
}

// FreePacket returns p to the pool. The caller must not use p afterwards.
func (e *Engine) FreePacket(p *Packet) {
	if p == nil {
		return
	}
	if len(e.ppool) < 65536 {
		e.ppool = append(e.ppool, p)
	}
}

// TCPHeaderBytes is the fixed per-segment header overhead the host model
// uses when sizing frames: Ethernet(14) + IPv4(20) + TCP(20).
const TCPHeaderBytes = packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + packet.TCPMinHeaderLen

// UDPHeaderBytes is Ethernet(14) + IPv4(20) + UDP(8).
const UDPHeaderBytes = packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + packet.UDPHeaderLen

// WireBytes serializes the packet into a real Ethernet frame using buf as
// scratch (grown as needed) and returns the frame. The output parses back
// with packet.Decoded and has valid checksums, so collectors and pcap
// dumps operate on genuine wire bytes.
func (p *Packet) WireBytes(buf []byte) []byte {
	switch p.Kind {
	case KindARP:
		return packet.BuildARP(buf, packet.ARPSpec{
			SrcMAC: p.SrcMAC, DstMAC: p.DstMAC,
			Op:        p.ARP.Op,
			SenderMAC: p.ARP.SenderMAC, SenderIP: p.ARP.SenderIP,
			TargetMAC: p.ARP.TargetMAC, TargetIP: p.ARP.TargetIP,
		})
	case KindUDP:
		return packet.BuildUDP(buf, packet.UDPSpec{
			SrcMAC: p.SrcMAC, DstMAC: p.DstMAC,
			SrcIP: p.SrcIP, DstIP: p.DstIP,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			PayloadLen: p.PayloadLen,
			Seq:        p.Seq,
			HasSeq:     p.PayloadLen >= 4,
		})
	default:
		return packet.BuildTCP(buf, packet.TCPSpec{
			SrcMAC: p.SrcMAC, DstMAC: p.DstMAC,
			SrcIP: p.SrcIP, DstIP: p.DstIP,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Seq: p.Seq, Ack: p.Ack,
			Flags:      p.TCPFlags,
			PayloadLen: p.PayloadLen,
		})
	}
}

// FlowKey returns the transport 5-tuple of a TCP/UDP packet.
func (p *Packet) FlowKey() packet.FlowKey {
	proto := packet.IPProtocolTCP
	if p.Kind == KindUDP {
		proto = packet.IPProtocolUDP
	}
	return packet.FlowKey{
		SrcIP: p.SrcIP, DstIP: p.DstIP,
		SrcPort: p.SrcPort, DstPort: p.DstPort,
		Proto: proto,
	}
}
