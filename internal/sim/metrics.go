package sim

import (
	"time"

	"planck/internal/obs"
)

// RegisterMetrics exposes the engine's vitals in r:
//
//	planck_sim_events_dispatched_total  events executed so far
//	planck_sim_pending_events           event-heap depth (incl. canceled)
//	planck_sim_virtual_seconds          the virtual clock
//	planck_sim_wall_seconds             wall time since the engine was built
//	planck_sim_time_dilation            virtual/wall ratio (>1: sim runs
//	                                    faster than real time)
//
// The engine is single-threaded by design; the callbacks read its
// fields without synchronization, so snapshots taken while the engine
// runs on another goroutine are best-effort telemetry, never inputs to
// the simulation.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("planck_sim_events_dispatched_total", func() float64 { return float64(e.dispatched) })
	r.GaugeFunc("planck_sim_pending_events", func() float64 { return float64(len(e.heap)) })
	r.GaugeFunc("planck_sim_virtual_seconds", func() float64 { return e.now.Seconds() })
	r.GaugeFunc("planck_sim_wall_seconds", func() float64 { return time.Since(e.wallStart).Seconds() })
	r.GaugeFunc("planck_sim_time_dilation", func() float64 {
		wall := time.Since(e.wallStart).Seconds()
		if wall <= 0 {
			return 0
		}
		return e.now.Seconds() / wall
	})
}
