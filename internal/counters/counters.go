// Package counters implements the §2.2 baseline: periodically polling
// per-port byte counters to infer link utilization. Counters say nothing
// about which flows cross a link, and their accuracy is bounded by the
// polling interval — a transient burst shorter than the interval is
// smeared into a low average, which is precisely the measurement gap
// Planck closes.
package counters

import (
	"planck/internal/sim"
	"planck/internal/units"
)

// Sample is one polled utilization observation.
type Sample struct {
	Time units.Time
	Port int
	// TxBytes is the byte delta over the interval.
	TxBytes int64
	// Util is the average transmit rate over the interval.
	Util units.Rate
}

// PortPoller reads transmit counters from a set of ports at a fixed
// interval (SNMP/OpenFlow port-stats style).
type PortPoller struct {
	ports    []*sim.Port
	interval units.Duration
	last     []int64
	ticker   *sim.Ticker

	// OnSample receives one observation per port per poll.
	OnSample func(s Sample)

	// Polls counts completed polling rounds.
	Polls int64
}

// NewPortPoller starts polling the given ports every interval.
func NewPortPoller(eng *sim.Engine, ports []*sim.Port, interval units.Duration, onSample func(Sample)) *PortPoller {
	p := &PortPoller{
		ports:    ports,
		interval: interval,
		last:     make([]int64, len(ports)),
		OnSample: onSample,
	}
	for i, port := range ports {
		p.last[i] = port.TxBytes
	}
	p.ticker = sim.NewTicker(eng, interval, p.poll)
	return p
}

// Stop halts polling.
func (p *PortPoller) Stop() { p.ticker.Stop() }

func (p *PortPoller) poll(now units.Time) {
	p.Polls++
	for i, port := range p.ports {
		delta := port.TxBytes - p.last[i]
		p.last[i] = port.TxBytes
		if p.OnSample != nil {
			p.OnSample(Sample{
				Time:    now,
				Port:    i,
				TxBytes: delta,
				Util:    units.RateOf(delta, p.interval),
			})
		}
	}
}
