package counters

import (
	"testing"

	"planck/internal/lab"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// TestPollerMeasuresSteadyRate: a steady 2 Gbps stream polled at 10 ms
// reads ≈2 Gbps per interval.
func TestPollerMeasuresSteadyRate(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, false)
	l, err := lab.New(lab.Options{Net: net, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Hosts[0].StartCBR(0, topo.HostIP(1), 7000, 1000, 2*units.Gbps, 1); err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	p := NewPortPoller(l.Eng, []*sim.Port{l.Switches[0].Port(1)}, 10*units.Millisecond,
		func(s Sample) { samples = append(samples, s) })
	l.Run(100 * units.Millisecond)
	p.Stop()
	if len(samples) < 8 {
		t.Fatalf("%d samples", len(samples))
	}
	for _, s := range samples[2:] {
		g := s.Util.Gigabits()
		if g < 1.7 || g > 2.4 {
			t.Fatalf("polled util %.2f Gbps, want ≈2 (+headers)", g)
		}
	}
}

// TestPollerSmearsTransients is §2.2's limitation: a 10 ms burst inside
// a 100 ms polling interval reads as ~10% utilization — invisible as
// congestion — while Planck's collector sees the true rate.
func TestPollerSmearsTransients(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := lab.New(lab.Options{Net: net, Mirror: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var polled []Sample
	NewPortPoller(l.Eng, []*sim.Port{l.Switches[0].Port(1)}, 100*units.Millisecond,
		func(s Sample) { polled = append(polled, s) })

	// An ~11 ms burst at ~9.5 Gbps starting at t=20 ms.
	var src interface{ Stop() }
	l.Eng.Schedule(units.Time(20*units.Millisecond), sim.Callback(func(now units.Time) {
		s, err := l.Hosts[0].StartCBR(now, topo.HostIP(1), 7000, 1460, 9500*units.Mbps, 1)
		if err != nil {
			panic(err)
		}
		src = s
	}), nil)
	l.Eng.Schedule(units.Time(31*units.Millisecond), sim.Callback(func(units.Time) {
		src.Stop()
	}), nil)

	var peakPlanck units.Rate
	sim.NewTicker(l.Eng, units.Millisecond, func(units.Time) {
		if u := l.Collector(0).LinkUtilization(1); u > peakPlanck {
			peakPlanck = u
		}
	})
	l.Run(150 * units.Millisecond)

	if len(polled) == 0 {
		t.Fatal("no polled samples")
	}
	var peakPolled units.Rate
	for _, s := range polled {
		if s.Util > peakPolled {
			peakPolled = s.Util
		}
	}
	// The poller smears the burst to ~1 Gbps; the collector's flow
	// tracking is not applicable to raw UDP without counters, so compare
	// against ground truth: the burst ran at ~9.5 Gbps.
	if peakPolled.Gigabits() > 2.0 {
		t.Fatalf("poller saw %.2f Gbps — interval too revealing?", peakPolled.Gigabits())
	}
	t.Logf("burst 9.5 Gbps for 11ms: poller peak %.2f Gbps (100ms interval)", peakPolled.Gigabits())
}

// TestPollerVsPlanckOnTCPBurst compares visibility of a short TCP flow:
// the 100 ms counter poll smears it; the collector estimates its true
// multi-Gbps rate within a millisecond.
func TestPollerVsPlanckOnTCPBurst(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := lab.New(lab.Options{Net: net, Mirror: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var polled []Sample
	NewPortPoller(l.Eng, []*sim.Port{l.Switches[0].Port(1)}, 100*units.Millisecond,
		func(s Sample) { polled = append(polled, s) })

	// 12 MiB at ~9.5 Gbps ≈ 11 ms of traffic.
	c, err := l.Hosts[0].StartFlow(units.Time(20*units.Millisecond), topo.HostIP(1), 5001, 12<<20, 1)
	_ = c
	if err != nil {
		t.Fatal(err)
	}
	var peakPlanck units.Rate
	sim.NewTicker(l.Eng, 500*units.Microsecond, func(units.Time) {
		if u := l.Collector(0).LinkUtilization(1); u > peakPlanck {
			peakPlanck = u
		}
	})
	l.Run(150 * units.Millisecond)

	var peakPolled units.Rate
	for _, s := range polled {
		if s.Util > peakPolled {
			peakPolled = s.Util
		}
	}
	if peakPlanck.Gigabits() < 6 {
		t.Fatalf("collector peak %.2f Gbps — missed the burst", peakPlanck.Gigabits())
	}
	if peakPolled.Gigabits() > peakPlanck.Gigabits()/3 {
		t.Fatalf("poller %.2f vs planck %.2f: smearing not demonstrated",
			peakPolled.Gigabits(), peakPlanck.Gigabits())
	}
	t.Logf("short TCP flow: poller peak %.2f Gbps vs collector peak %.2f Gbps",
		peakPolled.Gigabits(), peakPlanck.Gigabits())
}
