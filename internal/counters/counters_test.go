package counters

import (
	"testing"

	"planck/internal/lab"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// TestPollerMeasuresSteadyRate: a steady 2 Gbps stream polled at 10 ms
// reads ≈2 Gbps per interval.
func TestPollerMeasuresSteadyRate(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, false)
	l, err := lab.New(lab.Options{Net: net, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Hosts[0].StartCBR(0, topo.HostIP(1), 7000, 1000, 2*units.Gbps, 1); err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	p := NewPortPoller(l.Eng, []*sim.Port{l.Switches[0].Port(1)}, 10*units.Millisecond,
		func(s Sample) { samples = append(samples, s) })
	l.Run(100 * units.Millisecond)
	p.Stop()
	if len(samples) < 8 {
		t.Fatalf("%d samples", len(samples))
	}
	for _, s := range samples[2:] {
		g := s.Util.Gigabits()
		if g < 1.7 || g > 2.4 {
			t.Fatalf("polled util %.2f Gbps, want ≈2 (+headers)", g)
		}
	}
}

// TestPollerSmearsTransients is §2.2's limitation: a 10 ms burst inside
// a 100 ms polling interval reads as ~10% utilization — invisible as
// congestion — while Planck's collector sees the true rate.
func TestPollerSmearsTransients(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := lab.New(lab.Options{Net: net, Mirror: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var polled []Sample
	NewPortPoller(l.Eng, []*sim.Port{l.Switches[0].Port(1)}, 100*units.Millisecond,
		func(s Sample) { polled = append(polled, s) })

	// An ~11 ms burst at ~9.5 Gbps starting at t=20 ms.
	var src interface{ Stop() }
	l.Eng.Schedule(units.Time(20*units.Millisecond), sim.Callback(func(now units.Time) {
		s, err := l.Hosts[0].StartCBR(now, topo.HostIP(1), 7000, 1460, 9500*units.Mbps, 1)
		if err != nil {
			panic(err)
		}
		src = s
	}), nil)
	l.Eng.Schedule(units.Time(31*units.Millisecond), sim.Callback(func(units.Time) {
		src.Stop()
	}), nil)

	var peakPlanck units.Rate
	sim.NewTicker(l.Eng, units.Millisecond, func(units.Time) {
		if u := l.Collector(0).LinkUtilization(1); u > peakPlanck {
			peakPlanck = u
		}
	})
	l.Run(150 * units.Millisecond)

	if len(polled) == 0 {
		t.Fatal("no polled samples")
	}
	var peakPolled units.Rate
	for _, s := range polled {
		if s.Util > peakPolled {
			peakPolled = s.Util
		}
	}
	// The poller smears the burst to ~1 Gbps; the collector's flow
	// tracking is not applicable to raw UDP without counters, so compare
	// against ground truth: the burst ran at ~9.5 Gbps.
	if peakPolled.Gigabits() > 2.0 {
		t.Fatalf("poller saw %.2f Gbps — interval too revealing?", peakPolled.Gigabits())
	}
	t.Logf("burst 9.5 Gbps for 11ms: poller peak %.2f Gbps (100ms interval)", peakPolled.Gigabits())
}

// TestPollerVsPlanckOnTCPBurst compares visibility of a short TCP flow:
// the 100 ms counter poll smears it; the collector estimates its true
// multi-Gbps rate within a millisecond.
func TestPollerVsPlanckOnTCPBurst(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := lab.New(lab.Options{Net: net, Mirror: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var polled []Sample
	NewPortPoller(l.Eng, []*sim.Port{l.Switches[0].Port(1)}, 100*units.Millisecond,
		func(s Sample) { polled = append(polled, s) })

	// 12 MiB at ~9.5 Gbps ≈ 11 ms of traffic.
	c, err := l.Hosts[0].StartFlow(units.Time(20*units.Millisecond), topo.HostIP(1), 5001, 12<<20, 1)
	_ = c
	if err != nil {
		t.Fatal(err)
	}
	var peakPlanck units.Rate
	sim.NewTicker(l.Eng, 500*units.Microsecond, func(units.Time) {
		if u := l.Collector(0).LinkUtilization(1); u > peakPlanck {
			peakPlanck = u
		}
	})
	l.Run(150 * units.Millisecond)

	var peakPolled units.Rate
	for _, s := range polled {
		if s.Util > peakPolled {
			peakPolled = s.Util
		}
	}
	if peakPlanck.Gigabits() < 6 {
		t.Fatalf("collector peak %.2f Gbps — missed the burst", peakPlanck.Gigabits())
	}
	if peakPolled.Gigabits() > peakPlanck.Gigabits()/3 {
		t.Fatalf("poller %.2f vs planck %.2f: smearing not demonstrated",
			peakPolled.Gigabits(), peakPlanck.Gigabits())
	}
	t.Logf("short TCP flow: poller peak %.2f Gbps vs collector peak %.2f Gbps",
		peakPolled.Gigabits(), peakPlanck.Gigabits())
}

// pollerNode is an inert port owner for synthetic counter tests.
type pollerNode struct{}

func (pollerNode) Receive(units.Time, *sim.Port, *sim.Packet) {}
func (pollerNode) Name() string                               { return "pollerNode" }

// TestPollerSampleOrderingAndAccounting pins the poller's contract:
// polls fire at t = k·interval, each poll visits ports in index order
// exactly once, TxBytes is the delta since the previous poll (with the
// construction-time reading as the baseline), and Polls counts rounds —
// not per-port samples — and freezes after Stop.
func TestPollerSampleOrderingAndAccounting(t *testing.T) {
	eng := sim.New()
	var owner pollerNode
	ports := make([]*sim.Port, 3)
	for i := range ports {
		ports[i] = sim.NewPort(eng, owner, i, units.Rate10G)
	}
	// Traffic before the poller exists must not appear in any delta.
	ports[0].TxBytes = 500

	interval := units.Duration(units.Millisecond)
	var samples []Sample
	p := NewPortPoller(eng, ports, interval, func(s Sample) { samples = append(samples, s) })

	bump := func(at units.Duration, port int, bytes int64) {
		eng.Schedule(units.Time(at), sim.Callback(func(units.Time) {
			ports[port].TxBytes += bytes
		}), nil)
	}
	bump(500*units.Microsecond, 0, 1000)
	bump(500*units.Microsecond, 1, 2000)
	bump(1500*units.Microsecond, 2, 3000)

	eng.RunUntil(units.Time(3500 * units.Microsecond))

	if p.Polls != 3 {
		t.Fatalf("Polls = %d after 3.5 intervals, want 3", p.Polls)
	}
	if len(samples) != 9 {
		t.Fatalf("%d samples, want 3 polls x 3 ports", len(samples))
	}
	wantDeltas := []int64{1000, 2000, 0, 0, 0, 3000, 0, 0, 0}
	for i, s := range samples {
		round, port := i/3, i%3
		if s.Port != port {
			t.Fatalf("sample %d: port %d, want %d (index order within a round)", i, s.Port, port)
		}
		wantT := units.Time(units.Duration(round+1) * interval)
		if s.Time != wantT {
			t.Fatalf("sample %d: time %v, want %v", i, s.Time, wantT)
		}
		if s.TxBytes != wantDeltas[i] {
			t.Fatalf("sample %d (round %d port %d): delta %d, want %d", i, round, port, s.TxBytes, wantDeltas[i])
		}
		if want := units.RateOf(s.TxBytes, interval); s.Util != want {
			t.Fatalf("sample %d: util %v, want %v", i, s.Util, want)
		}
	}

	p.Stop()
	eng.RunUntil(units.Time(10 * units.Millisecond))
	if p.Polls != 3 || len(samples) != 9 {
		t.Fatalf("after Stop: Polls=%d samples=%d, want unchanged 3/9", p.Polls, len(samples))
	}
}
