package topo

import (
	"fmt"

	"planck/internal/units"
)

// Fat-tree layout constants for the paper's 16-host testbed (a k=4
// three-tier fat-tree of 5-port logical switches). The general layout
// lives in ftLayout; these constants keep the k=4 shape nameable.
const (
	ftPods          = 4
	ftEdgesPerPod   = 2
	ftAggsPerPod    = 2
	ftHostsPerEdge  = 2
	ftCores         = 4
	ftHosts         = 16
	ftMonitorPort   = 4 // the fifth port on every logical switch
	ftSwitchPorts   = 5
	ftNumEdges      = ftPods * ftEdgesPerPod
	ftNumAggs       = ftPods * ftAggsPerPod
	ftEdgeBase      = 0
	ftAggBase       = ftNumEdges
	ftCoreBase      = ftNumEdges + ftNumAggs
	ftTotalSwitches = ftCoreBase + ftCores
)

func edgeID(pod, e int) int { return ftEdgeBase + pod*ftEdgesPerPod + e }
func aggID(pod, a int) int  { return ftAggBase + pod*ftAggsPerPod + a }
func coreID(c int) int      { return ftCoreBase + c }

// ftLayout is the index arithmetic of a k-ary three-tier fat-tree built
// from (k+1)-port logical switches: k pods of k/2 edge and k/2
// aggregation switches, (k/2)² cores, k/2 hosts per edge, and one extra
// monitor port per switch. Switch numbering is edges, then aggs, then
// cores, pod-major within each tier.
//
// Edge switch ports: 0..k/2-1 -> hosts; k/2..k-1 -> aggs 0..k/2-1 of
// the pod; k monitor.
// Agg switch ports:  0..k/2-1 -> edges 0..k/2-1 of the pod; k/2..k-1 ->
// cores (agg a of any pod connects cores a·k/2 .. a·k/2+k/2-1); k monitor.
// Core switch ports: 0..k-1 -> pods 0..k-1 (core c via agg c/(k/2) in
// each); k monitor.
type ftLayout struct {
	k int
}

func (f ftLayout) half() int        { return f.k / 2 }
func (f ftLayout) pods() int        { return f.k }
func (f ftLayout) hosts() int       { return f.k * f.k * f.k / 4 }
func (f ftLayout) cores() int       { return f.half() * f.half() }
func (f ftLayout) numEdges() int    { return f.pods() * f.half() }
func (f ftLayout) numAggs() int     { return f.pods() * f.half() }
func (f ftLayout) aggBase() int     { return f.numEdges() }
func (f ftLayout) coreBase() int    { return f.numEdges() + f.numAggs() }
func (f ftLayout) switches() int    { return f.coreBase() + f.cores() }
func (f ftLayout) monitorPort() int { return f.k }

func (f ftLayout) edge(pod, e int) int { return pod*f.half() + e }
func (f ftLayout) agg(pod, a int) int  { return f.aggBase() + pod*f.half() + a }
func (f ftLayout) core(c int) int      { return f.coreBase() + c }

// FatTree builds a k-ary fat-tree (k even, ≥ 2) with one routing tree
// per core switch: tree c routes inter-pod traffic through core c and
// intra-pod traffic through aggregation switch c/(k/2) of the pod,
// giving (k/2)² edge-disjoint inter-pod paths per destination. Every
// switch gives up one extra port for monitoring, matching the paper's
// deployment model of one collector per mirror port (§2, §9.1).
func FatTree(k int, rate units.Rate) *Network {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity must be even and >= 2, got %d", k))
	}
	f := ftLayout{k: k}
	half := f.half()
	n := &Network{
		Name:        fmt.Sprintf("fattree%d", f.hosts()),
		LineRate:    rate,
		SwitchNames: make([]string, f.switches()),
		Ports:       make([][]Endpoint, f.switches()),
		Hosts:       make([]Attach, f.hosts()),
		MonitorPort: make([]int, f.switches()),
		NumTrees:    f.cores(),
		Pods:        f.pods(),
		podOf:       make([]int, f.switches()),
	}
	for s := range n.Ports {
		n.Ports[s] = make([]Endpoint, k+1)
		n.MonitorPort[s] = f.monitorPort()
		n.Ports[s][f.monitorPort()] = Endpoint{Kind: ToMonitor}
		n.podOf[s] = -1
	}
	for p := 0; p < f.pods(); p++ {
		for e := 0; e < half; e++ {
			n.SwitchNames[f.edge(p, e)] = fmt.Sprintf("edge%d.%d", p, e)
			n.podOf[f.edge(p, e)] = p
		}
		for a := 0; a < half; a++ {
			n.SwitchNames[f.agg(p, a)] = fmt.Sprintf("agg%d.%d", p, a)
			n.podOf[f.agg(p, a)] = p
		}
	}
	for c := 0; c < f.cores(); c++ {
		n.SwitchNames[f.core(c)] = fmt.Sprintf("core%d", c)
	}

	// Hosts onto edges.
	for h := 0; h < f.hosts(); h++ {
		pod := h / (half * half)
		e := (h / half) % half
		port := h % half
		sw := f.edge(pod, e)
		n.Hosts[h] = Attach{Switch: sw, Port: port}
		n.Ports[sw][port] = Endpoint{Kind: ToHost, Host: h}
	}
	// Edge <-> agg.
	for p := 0; p < f.pods(); p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				wire(n, f.edge(p, e), half+a, f.agg(p, a), e)
			}
		}
	}
	// Agg <-> core: agg a connects cores a·k/2+i on port k/2+i; core c
	// reaches pod p on port p.
	for p := 0; p < f.pods(); p++ {
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				wire(n, f.agg(p, a), half+i, f.core(a*half+i), p)
			}
		}
	}

	buildFatTreeRoutes(n, f)
	return n
}

// FatTree16 builds the paper's 16-host fat-tree with four routing trees,
// one per core switch. Tree c routes inter-pod traffic through core c and
// intra-pod traffic through aggregation switch c/2, giving four
// edge-disjoint inter-pod paths per destination.
func FatTree16(rate units.Rate) *Network {
	n := FatTree(4, rate)
	n.Name = "fattree16"
	return n
}

func wire(n *Network, s1, p1, s2, p2 int) {
	n.Ports[s1][p1] = Endpoint{Kind: ToSwitch, Switch: s2, Port: p2}
	n.Ports[s2][p2] = Endpoint{Kind: ToSwitch, Switch: s1, Port: p1}
}

func buildFatTreeRoutes(n *Network, f ftLayout) {
	half := f.half()
	n.routes = make([][][]int, n.NumTrees)
	for c := 0; c < n.NumTrees; c++ {
		n.routes[c] = make([][]int, f.hosts())
		a := c / half       // aggregation index used by tree c in every pod
		up := half + c%half // agg port toward core c
		for d := 0; d < f.hosts(); d++ {
			r := make([]int, f.switches())
			for i := range r {
				r[i] = -1
			}
			dpod := d / (half * half)
			dedge := (d / half) % half
			dport := d % half

			// Destination edge delivers to the host.
			r[f.edge(dpod, dedge)] = dport
			// Every other edge sends up to agg a of its own pod.
			for p := 0; p < f.pods(); p++ {
				for e := 0; e < half; e++ {
					if p == dpod && e == dedge {
						continue
					}
					r[f.edge(p, e)] = half + a
				}
			}
			// Destination pod's agg a sends down to the destination edge.
			r[f.agg(dpod, a)] = dedge
			// Other pods' agg a sends up to core c.
			for p := 0; p < f.pods(); p++ {
				if p != dpod {
					r[f.agg(p, a)] = up
				}
			}
			// Core c sends down to the destination pod.
			r[f.core(c)] = dpod
			n.routes[c][d] = r
		}
	}
}
