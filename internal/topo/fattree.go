package topo

import (
	"fmt"

	"planck/internal/units"
)

// Fat-tree layout constants for the paper's 16-host testbed (a k=4
// three-tier fat-tree of 5-port logical switches).
const (
	ftPods          = 4
	ftEdgesPerPod   = 2
	ftAggsPerPod    = 2
	ftHostsPerEdge  = 2
	ftCores         = 4
	ftHosts         = 16
	ftMonitorPort   = 4 // the fifth port on every logical switch
	ftSwitchPorts   = 5
	ftNumEdges      = ftPods * ftEdgesPerPod
	ftNumAggs       = ftPods * ftAggsPerPod
	ftEdgeBase      = 0
	ftAggBase       = ftNumEdges
	ftCoreBase      = ftNumEdges + ftNumAggs
	ftTotalSwitches = ftCoreBase + ftCores
)

func edgeID(pod, e int) int { return ftEdgeBase + pod*ftEdgesPerPod + e }
func aggID(pod, a int) int  { return ftAggBase + pod*ftAggsPerPod + a }
func coreID(c int) int      { return ftCoreBase + c }

// Edge switch ports: 0,1 -> hosts; 2,3 -> agg 0,1; 4 monitor.
// Agg switch ports:  0,1 -> edge 0,1; 2,3 -> cores (agg a of any pod
// connects cores 2a and 2a+1); 4 monitor.
// Core switch ports: 0..3 -> pods 0..3 (via agg c/2 in each); 4 monitor.

// FatTree16 builds the paper's 16-host fat-tree with four routing trees,
// one per core switch. Tree c routes inter-pod traffic through core c and
// intra-pod traffic through aggregation switch c/2, giving four
// edge-disjoint inter-pod paths per destination.
func FatTree16(rate units.Rate) *Network {
	n := &Network{
		Name:        "fattree16",
		LineRate:    rate,
		SwitchNames: make([]string, ftTotalSwitches),
		Ports:       make([][]Endpoint, ftTotalSwitches),
		Hosts:       make([]Attach, ftHosts),
		MonitorPort: make([]int, ftTotalSwitches),
		NumTrees:    ftCores,
	}
	for s := range n.Ports {
		n.Ports[s] = make([]Endpoint, ftSwitchPorts)
		n.MonitorPort[s] = ftMonitorPort
		n.Ports[s][ftMonitorPort] = Endpoint{Kind: ToMonitor}
	}
	for p := 0; p < ftPods; p++ {
		for e := 0; e < ftEdgesPerPod; e++ {
			n.SwitchNames[edgeID(p, e)] = fmt.Sprintf("edge%d.%d", p, e)
		}
		for a := 0; a < ftAggsPerPod; a++ {
			n.SwitchNames[aggID(p, a)] = fmt.Sprintf("agg%d.%d", p, a)
		}
	}
	for c := 0; c < ftCores; c++ {
		n.SwitchNames[coreID(c)] = fmt.Sprintf("core%d", c)
	}

	// Hosts onto edges.
	for h := 0; h < ftHosts; h++ {
		pod := h / (ftEdgesPerPod * ftHostsPerEdge)
		e := (h / ftHostsPerEdge) % ftEdgesPerPod
		port := h % ftHostsPerEdge
		sw := edgeID(pod, e)
		n.Hosts[h] = Attach{Switch: sw, Port: port}
		n.Ports[sw][port] = Endpoint{Kind: ToHost, Host: h}
	}
	// Edge <-> agg.
	for p := 0; p < ftPods; p++ {
		for e := 0; e < ftEdgesPerPod; e++ {
			for a := 0; a < ftAggsPerPod; a++ {
				wire(n, edgeID(p, e), 2+a, aggID(p, a), e)
			}
		}
	}
	// Agg <-> core: agg a connects cores 2a and 2a+1 on ports 2 and 3;
	// core c reaches pod p on port p.
	for p := 0; p < ftPods; p++ {
		for a := 0; a < ftAggsPerPod; a++ {
			for i := 0; i < 2; i++ {
				wire(n, aggID(p, a), 2+i, coreID(2*a+i), p)
			}
		}
	}

	buildFatTreeRoutes(n)
	return n
}

func wire(n *Network, s1, p1, s2, p2 int) {
	n.Ports[s1][p1] = Endpoint{Kind: ToSwitch, Switch: s2, Port: p2}
	n.Ports[s2][p2] = Endpoint{Kind: ToSwitch, Switch: s1, Port: p1}
}

func buildFatTreeRoutes(n *Network) {
	n.routes = make([][][]int, n.NumTrees)
	for c := 0; c < n.NumTrees; c++ {
		n.routes[c] = make([][]int, ftHosts)
		a := c / 2    // aggregation index used by tree c in every pod
		up := 2 + c%2 // agg port toward core c
		for d := 0; d < ftHosts; d++ {
			r := make([]int, ftTotalSwitches)
			for i := range r {
				r[i] = -1
			}
			dpod := d / (ftEdgesPerPod * ftHostsPerEdge)
			dedge := (d / ftHostsPerEdge) % ftEdgesPerPod
			dport := d % ftHostsPerEdge

			// Destination edge delivers to the host.
			r[edgeID(dpod, dedge)] = dport
			// Every other edge sends up to agg a of its own pod.
			for p := 0; p < ftPods; p++ {
				for e := 0; e < ftEdgesPerPod; e++ {
					if p == dpod && e == dedge {
						continue
					}
					r[edgeID(p, e)] = 2 + a
				}
			}
			// Destination pod's agg a sends down to the destination edge.
			r[aggID(dpod, a)] = dedge
			// Other pods' agg a sends up to core c.
			for p := 0; p < ftPods; p++ {
				if p != dpod {
					r[aggID(p, a)] = up
				}
			}
			// Core c sends down to the destination pod.
			r[coreID(c)] = dpod
			n.routes[c][d] = r
		}
	}
}
