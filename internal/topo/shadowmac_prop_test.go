package topo

import (
	"testing"

	"planck/internal/packet"
)

// TestTreeOfMACIsTotalInverse exhaustively checks that TreeOfMAC
// inverts ShadowMAC over the entire encodable host/tree domain: hosts
// 0..65534 (ids are 1-based 16-bit) times trees 0..255.
func TestTreeOfMACIsTotalInverse(t *testing.T) {
	for h := 0; h <= 0xfffe; h++ {
		for tr := 0; tr <= 0xff; tr++ {
			m := ShadowMAC(h, tr)
			gh, gt, ok := TreeOfMAC(m)
			if !ok || gh != h || gt != tr {
				t.Fatalf("TreeOfMAC(ShadowMAC(%d,%d)) = (%d,%d,%v)", h, tr, gh, gt, ok)
			}
		}
	}
}

func TestTreeOfMACRejectsForeignMACs(t *testing.T) {
	cases := []struct {
		name string
		m    packet.MAC
	}{
		{"wrong OUI byte", packet.MAC{0xde, 0x00, 0, 0, 0, 1}},
		{"nonzero pad byte 2", packet.MAC{0x02, 0x01, 0xff, 0, 0, 1}},
		{"nonzero pad byte 3", packet.MAC{0x02, 0x01, 0, 0xff, 0, 1}},
		{"zero host id", packet.MAC{0x02, 0x03, 0, 0, 0, 0}},
		{"broadcast", packet.BroadcastMAC},
		{"zero MAC", packet.MAC{}},
		{"controller MAC", packet.MAC{0x02, 0xff, 0, 0, 0, 0xfe}},
	}
	for _, c := range cases {
		if h, tr, ok := TreeOfMAC(c.m); ok {
			// The controller MAC is structurally a valid shadow MAC
			// (id 254); only the genuinely malformed ones must fail.
			if c.name == "controller MAC" {
				if h != 0xfd || tr != 0xff {
					t.Fatalf("%s decoded to (%d,%d)", c.name, h, tr)
				}
				continue
			}
			t.Fatalf("%s accepted as (%d,%d)", c.name, h, tr)
		} else if c.name == "controller MAC" {
			t.Fatalf("%s rejected; it is structurally a shadow MAC", c.name)
		}
	}
}

// FuzzTreeOfMAC checks the inverse property from the decode side: any
// six bytes either decode to a (host, tree) pair that ShadowMAC maps
// back to exactly the input, or are rejected — and rejection happens
// exactly for the MACs outside ShadowMAC's image.
func FuzzTreeOfMAC(f *testing.F) {
	seed := func(m packet.MAC) { f.Add(m[0], m[1], m[2], m[3], m[4], m[5]) }
	seed(ShadowMAC(0, 0))
	seed(ShadowMAC(8, 2))
	seed(ShadowMAC(0xfffe, 0xff))
	seed(packet.MAC{0x02, 0x01, 0, 0, 0, 0}) // structurally valid, zero id
	seed(packet.MAC{0xde, 0xad, 0, 0, 0, 1})
	seed(packet.BroadcastMAC)
	f.Fuzz(func(t *testing.T, b0, b1, b2, b3, b4, b5 byte) {
		m := packet.MAC{b0, b1, b2, b3, b4, b5}
		host, tree, ok := TreeOfMAC(m)
		inImage := m[0] == 0x02 && m[2] == 0 && m[3] == 0 && (m[4] != 0 || m[5] != 0)
		if ok != inImage {
			t.Fatalf("TreeOfMAC(%v) ok=%v, want %v", m, ok, inImage)
		}
		if !ok {
			return
		}
		if host < 0 || host > 0xfffe || tree < 0 || tree > 0xff {
			t.Fatalf("TreeOfMAC(%v) out of domain: host=%d tree=%d", m, host, tree)
		}
		if rt := ShadowMAC(host, tree); rt != m {
			t.Fatalf("ShadowMAC(%d,%d)=%v, want round-trip to %v", host, tree, rt, m)
		}
	})
}
