package topo

import (
	"fmt"

	"planck/internal/units"
)

// SingleSwitch builds an n-host single-switch topology. When withMonitor
// is true, one extra port is the monitor port (the configuration of every
// §5 microbenchmark); otherwise the topology is the paper's "Optimal"
// non-blocking baseline, where all 16 hosts share one 64-port switch.
// There is exactly one routing tree since paths are unique.
func SingleSwitch(name string, nHosts int, rate units.Rate, withMonitor bool) *Network {
	if nHosts <= 0 {
		panic(fmt.Sprintf("topo: SingleSwitch with %d hosts", nHosts))
	}
	ports := nHosts
	monitor := -1
	if withMonitor {
		monitor = nHosts
		ports++
	}
	n := &Network{
		Name:        name,
		LineRate:    rate,
		SwitchNames: []string{name},
		Ports:       [][]Endpoint{make([]Endpoint, ports)},
		Hosts:       make([]Attach, nHosts),
		MonitorPort: []int{monitor},
		NumTrees:    1,
	}
	for h := 0; h < nHosts; h++ {
		n.Hosts[h] = Attach{Switch: 0, Port: h}
		n.Ports[0][h] = Endpoint{Kind: ToHost, Host: h}
	}
	if withMonitor {
		n.Ports[0][monitor] = Endpoint{Kind: ToMonitor}
	}
	n.routes = [][][]int{make([][]int, nHosts)}
	for d := 0; d < nHosts; d++ {
		n.routes[0][d] = []int{d}
	}
	return n
}
