package topo

import (
	"testing"
	"testing/quick"

	"planck/internal/units"
)

func TestFatTreeShape(t *testing.T) {
	n := FatTree16(units.Rate10G)
	if n.NumSwitches() != 20 {
		t.Fatalf("switches %d", n.NumSwitches())
	}
	if n.NumHosts() != 16 {
		t.Fatalf("hosts %d", n.NumHosts())
	}
	if n.NumTrees != 4 {
		t.Fatalf("trees %d", n.NumTrees)
	}
	for s := 0; s < n.NumSwitches(); s++ {
		if len(n.Ports[s]) != 5 {
			t.Fatalf("switch %d has %d ports", s, len(n.Ports[s]))
		}
		if n.MonitorPort[s] != 4 {
			t.Fatalf("switch %d monitor %d", s, n.MonitorPort[s])
		}
		if n.Ports[s][4].Kind != ToMonitor {
			t.Fatalf("switch %d port 4 kind %v", s, n.Ports[s][4].Kind)
		}
	}
}

func TestFatTreeWiringIsSymmetric(t *testing.T) {
	n := FatTree16(units.Rate10G)
	for s := range n.Ports {
		for p, ep := range n.Ports[s] {
			if ep.Kind != ToSwitch {
				continue
			}
			back := n.Ports[ep.Switch][ep.Port]
			if back.Kind != ToSwitch || back.Switch != s || back.Port != p {
				t.Fatalf("asymmetric wiring s%d:p%d -> s%d:p%d -> %+v", s, p, ep.Switch, ep.Port, back)
			}
		}
	}
}

func TestFatTreeHostAttachment(t *testing.T) {
	n := FatTree16(units.Rate10G)
	seen := map[Attach]bool{}
	for h := 0; h < 16; h++ {
		at := n.Hosts[h]
		if seen[at] {
			t.Fatalf("host %d shares a port", h)
		}
		seen[at] = true
		ep := n.Ports[at.Switch][at.Port]
		if ep.Kind != ToHost || ep.Host != h {
			t.Fatalf("host %d attach mismatch: %+v", h, ep)
		}
	}
}

// TestPathsValid checks every (src, dst, tree) path terminates at the
// destination (PathFor panics internally on loops and dead ends).
func TestPathsValid(t *testing.T) {
	n := FatTree16(units.Rate10G)
	for tree := 0; tree < n.NumTrees; tree++ {
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				if s == d {
					continue
				}
				path := n.PathFor(s, d, tree)
				if len(path) == 0 {
					t.Fatalf("empty path %d->%d tree %d", s, d, tree)
				}
				// Last hop must deliver to the host.
				lastHop := path[len(path)-1]
				ep := n.Ports[lastHop.Switch][lastHop.Port]
				if ep.Kind != ToHost || ep.Host != d {
					t.Fatalf("path %d->%d tree %d ends at %+v", s, d, tree, ep)
				}
			}
		}
	}
}

func TestPathLengths(t *testing.T) {
	n := FatTree16(units.Rate10G)
	for tree := 0; tree < 4; tree++ {
		// Same edge: one switch hop.
		if got := len(n.PathFor(0, 1, tree)); got != 1 {
			t.Fatalf("same-edge path len %d", got)
		}
		// Same pod, different edge: edge-agg-edge.
		if got := len(n.PathFor(0, 2, tree)); got != 3 {
			t.Fatalf("intra-pod path len %d", got)
		}
		// Inter-pod: edge-agg-core-agg-edge.
		if got := len(n.PathFor(0, 8, tree)); got != 5 {
			t.Fatalf("inter-pod path len %d", got)
		}
	}
}

// TestTreesAreCoreDisjoint: inter-pod paths under different trees must
// not share any aggregation->core or core->aggregation link.
func TestTreesAreCoreDisjoint(t *testing.T) {
	n := FatTree16(units.Rate10G)
	for s := 0; s < 4; s++ { // pod 0 hosts
		for d := 8; d < 12; d++ { // pod 2 hosts
			used := map[LinkID]int{}
			for tree := 0; tree < 4; tree++ {
				for _, l := range n.PathFor(s, d, tree) {
					// Only count switch-to-switch links.
					if n.Ports[l.Switch][l.Port].Kind == ToSwitch {
						used[l]++
					}
				}
			}
			for l, cnt := range used {
				// Edge uplinks are shared between tree pairs (two trees per
				// agg); core links must be unique.
				ep := n.Ports[l.Switch][l.Port]
				if l.Switch >= ftCoreBase || ep.Switch >= ftCoreBase {
					if cnt > 1 {
						t.Fatalf("core link %v shared by %d trees", l, cnt)
					}
				}
			}
		}
	}
}

func TestShadowMACRoundTrip(t *testing.T) {
	f := func(h uint8, tree uint8) bool {
		host := int(h) % 1024
		tr := int(tree) % 8
		m := ShadowMAC(host, tr)
		gh, gt, ok := TreeOfMAC(m)
		return ok && gh == host && gt == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostIPRoundTrip(t *testing.T) {
	for h := 0; h < 300; h++ {
		got, ok := HostOfIP(HostIP(h))
		if !ok || got != h {
			t.Fatalf("host %d -> %v %v", h, got, ok)
		}
	}
}

func TestMACEntriesCoverAllTrees(t *testing.T) {
	n := FatTree16(units.Rate10G)
	// The destination edge switch must have entries for all 4 shadow MACs
	// of its hosts.
	edge := n.Hosts[0].Switch
	entries := n.MACEntries(edge)
	for tree := 0; tree < 4; tree++ {
		if _, ok := entries[ShadowMAC(0, tree)]; !ok {
			t.Fatalf("edge missing entry for host 0 tree %d", tree)
		}
	}
	// A core switch only participates in its own tree.
	core := coreID(2)
	entries = n.MACEntries(core)
	for d := 0; d < 16; d++ {
		if _, ok := entries[ShadowMAC(d, 2)]; !ok {
			t.Fatalf("core2 missing entry for host %d", d)
		}
		if _, ok := entries[ShadowMAC(d, 0)]; ok {
			t.Fatalf("core2 has foreign-tree entry for host %d", d)
		}
	}
}

func TestEgressRewrites(t *testing.T) {
	n := FatTree16(units.Rate10G)
	edge := n.Hosts[5].Switch
	rw := n.EgressRewrites(edge)
	for tree := 1; tree < 4; tree++ {
		real, ok := rw[ShadowMAC(5, tree)]
		if !ok || real != ShadowMAC(5, 0) {
			t.Fatalf("rewrite for host 5 tree %d: %v ok=%v", tree, real, ok)
		}
	}
	// Base MACs must not be rewritten.
	if _, ok := rw[ShadowMAC(5, 0)]; ok {
		t.Fatal("base MAC has a rewrite rule")
	}
	// Hosts on other switches must not appear.
	if _, ok := rw[ShadowMAC(0, 1)]; ok {
		t.Fatal("foreign host in rewrite table")
	}
}

func TestSingleSwitch(t *testing.T) {
	n := SingleSwitch("sw", 16, units.Rate10G, true)
	if n.NumSwitches() != 1 || n.NumHosts() != 16 {
		t.Fatal("shape")
	}
	if n.MonitorPort[0] != 16 {
		t.Fatalf("monitor port %d", n.MonitorPort[0])
	}
	if got := n.PathFor(0, 5, 0); len(got) != 1 || got[0] != (LinkID{Switch: 0, Port: 5}) {
		t.Fatalf("path %+v", got)
	}
	n2 := SingleSwitch("opt", 16, units.Rate10G, false)
	if n2.MonitorPort[0] != -1 {
		t.Fatal("optimal topology should have no monitor port")
	}
}
