// Package topo describes network topologies and computes the PAST-style
// per-address spanning-tree routes and shadow-MAC alternate paths the
// paper's traffic-engineering application uses (§6.2).
//
// The flagship topology is the paper's 16-host, three-tier fat-tree built
// from twenty 5-port logical switches (8 edge, 8 aggregation, 4 core),
// each giving up one port for monitoring. Each of the four core switches
// defines an edge-disjoint spanning tree, which is exactly the paper's
// set of four pre-installed alternate paths per destination.
package topo

import (
	"fmt"

	"planck/internal/packet"
	"planck/internal/units"
)

// EndpointKind classifies what a switch port connects to.
type EndpointKind uint8

// Endpoint kinds.
const (
	Unused EndpointKind = iota
	ToSwitch
	ToHost
	ToMonitor
)

// Endpoint is the far side of a switch port.
type Endpoint struct {
	Kind   EndpointKind
	Switch int // for ToSwitch: peer switch
	Port   int // for ToSwitch: peer port
	Host   int // for ToHost: host index
}

// Attach records where a host plugs in.
type Attach struct {
	Switch int
	Port   int
}

// LinkID identifies a directed link by its transmitting switch port.
// Host NICs are not LinkIDs; the first hop of every alternate path is the
// same host uplink, so it never differentiates path choices.
type LinkID struct {
	Switch int
	Port   int
}

// String renders the link for logs.
func (l LinkID) String() string { return fmt.Sprintf("s%d:p%d", l.Switch, l.Port) }

// Network is a static topology description plus its routing trees.
type Network struct {
	// Name describes the topology.
	Name string
	// LineRate applies to every link.
	LineRate units.Rate
	// SwitchNames, indexed by switch.
	SwitchNames []string
	// Ports[s][p] is the endpoint of switch s port p.
	Ports [][]Endpoint
	// Hosts[h] is where host h attaches.
	Hosts []Attach
	// MonitorPort[s] is switch s's monitor port, or -1.
	MonitorPort []int
	// NumTrees is the number of routing trees (1 base + alternates).
	NumTrees int
	// Pods is the pod count for pod-structured topologies (fat-trees);
	// 0 when the topology has no pod structure.
	Pods int

	// routes[t][d][s] is the output port at switch s toward host d under
	// tree t, or -1 when s is not on that tree.
	routes [][][]int
	// podOf[s] is the pod switch s belongs to, or -1 for core switches;
	// nil when the topology has no pod structure.
	podOf []int
}

// PodOfSwitch returns the pod switch s belongs to, or -1 for switches
// outside any pod (core tier, or topologies without pod structure).
func (n *Network) PodOfSwitch(s int) int {
	if n.podOf == nil || s < 0 || s >= len(n.podOf) {
		return -1
	}
	return n.podOf[s]
}

// NumSwitches returns the switch count.
func (n *Network) NumSwitches() int { return len(n.Ports) }

// NumHosts returns the host count.
func (n *Network) NumHosts() int { return len(n.Hosts) }

// BaseMAC returns host h's real MAC address.
func (n *Network) BaseMAC(h int) packet.MAC { return ShadowMAC(h, 0) }

// ShadowMAC returns the MAC addressing host h via tree t; tree 0 is the
// base (real) address.
func ShadowMAC(h, t int) packet.MAC {
	id := h + 1 // 1-based so the zero MAC is never a host address
	return packet.MAC{0x02, byte(t), 0x00, 0x00, byte(id >> 8), byte(id)}
}

// TreeOfMAC inverts ShadowMAC. ok is false for foreign MACs, including
// the zero host id: ShadowMAC ids are 1-based, so a structurally valid
// MAC carrying id 0 was never assigned to a host. With that rejection
// TreeOfMAC is a total inverse over the host/tree domain — ok implies
// ShadowMAC(host, tree) == m with host >= 0 (property- and fuzz-tested
// in shadowmac_prop_test.go).
func TreeOfMAC(m packet.MAC) (host, tree int, ok bool) {
	if m[0] != 0x02 || m[2] != 0 || m[3] != 0 {
		return 0, 0, false
	}
	id := int(m[4])<<8 | int(m[5])
	if id == 0 {
		return 0, 0, false
	}
	return id - 1, int(m[1]), true
}

// HostIP returns host h's IP address.
func HostIP(h int) packet.IPv4 {
	id := h + 1
	return packet.IPv4{10, 0, byte(id >> 8), byte(id)}
}

// HostOfIP inverts HostIP.
func HostOfIP(ip packet.IPv4) (int, bool) {
	if ip[0] != 10 || ip[1] != 0 {
		return 0, false
	}
	return (int(ip[2])<<8 | int(ip[3])) - 1, true
}

// RoutePort returns the output port at switch s toward host d under tree
// t, or -1 when s does not participate in the tree.
func (n *Network) RoutePort(tree, dst, sw int) int { return n.routes[tree][dst][sw] }

// PathFor returns the switch egress links a packet from src to dst under
// tree t traverses, starting at src's edge switch. It panics on a routing
// loop, which would be a tree-construction bug.
func (n *Network) PathFor(src, dst, tree int) []LinkID {
	if src == dst {
		return nil
	}
	var path []LinkID
	sw := n.Hosts[src].Switch
	for hops := 0; ; hops++ {
		if hops > len(n.Ports) {
			panic(fmt.Sprintf("topo: routing loop for %d->%d tree %d", src, dst, tree))
		}
		out := n.routes[tree][dst][sw]
		if out < 0 {
			panic(fmt.Sprintf("topo: no route at switch %d for %d->%d tree %d", sw, src, dst, tree))
		}
		path = append(path, LinkID{Switch: sw, Port: out})
		ep := n.Ports[sw][out]
		switch ep.Kind {
		case ToHost:
			if ep.Host != dst {
				panic(fmt.Sprintf("topo: tree %d delivers %d->%d to host %d", tree, src, dst, ep.Host))
			}
			return path
		case ToSwitch:
			sw = ep.Switch
		default:
			panic(fmt.Sprintf("topo: tree %d routes %d->%d into %v", tree, src, dst, ep.Kind))
		}
	}
}

// MACEntries enumerates the (MAC, outPort) forwarding entries switch s
// needs: one per (destination, tree) pair that s participates in.
func (n *Network) MACEntries(s int) map[packet.MAC]int {
	out := make(map[packet.MAC]int)
	for t := 0; t < n.NumTrees; t++ {
		for d := 0; d < n.NumHosts(); d++ {
			if p := n.routes[t][d][s]; p >= 0 {
				out[ShadowMAC(d, t)] = p
			}
		}
	}
	return out
}

// EgressRewrites enumerates the shadow->real restore rules for switch s:
// one per non-base tree per host attached to s.
func (n *Network) EgressRewrites(s int) map[packet.MAC]packet.MAC {
	out := make(map[packet.MAC]packet.MAC)
	for h, at := range n.Hosts {
		if at.Switch != s {
			continue
		}
		for t := 1; t < n.NumTrees; t++ {
			out[ShadowMAC(h, t)] = ShadowMAC(h, 0)
		}
	}
	return out
}
