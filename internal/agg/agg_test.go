package agg_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"planck/internal/agg"
	"planck/internal/core"
	"planck/internal/lab"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/topo"
	"planck/internal/units"
)

// The fleet-vs-global oracle. A real testbed run is captured at the
// collector's NIC (the same shared-bottleneck scenario the lab's
// serial-equivalence oracle uses), then replayed two ways:
//
//	(a) through one global collector that sees every sample — the
//	    hypothetical monolith;
//	(b) through a fleet of vantage collectors, each seeing only its
//	    partition of the stream, feeding one aggregation Plane.
//
// The plane's outputs must match the monolith's exactly: the same
// congestion events in the same stream order with the same cooldown
// spacing and the same (sorted) flow annotations, per-port link
// utilizations equal to the bit, the same flow records with the same
// rates, and the same mid-replay expiry count. Fleet sizes 2, 4, and
// 20 cover partitioned vantages; a 2-replica fleet covers fully
// overlapping vantages, where the cross-vantage dedup must collapse
// the doubled reports and candidates back to the monolith's stream.
//
// Exactness holds under static routing (the capture scenario): with a
// fixed port map, each flow's (lastSeen, rate, port) trajectory at its
// vantage collector is identical to its trajectory in the monolith, so
// every sum and threshold comparison agrees. Under live reroutes the
// plane tracks port moves at sample granularity while a collector
// remaps its whole table on an epoch bump, so equality weakens to
// convergence-within-a-poll; DESIGN.md §3.6 discusses the gap.

type capturedStream struct {
	times []units.Time
	offs  []int
	buf   []byte
}

func (cs *capturedStream) add(at units.Time, frame []byte) {
	if len(cs.offs) == 0 {
		cs.offs = append(cs.offs, 0)
	}
	cs.times = append(cs.times, at)
	cs.buf = append(cs.buf, frame...)
	cs.offs = append(cs.offs, len(cs.buf))
}

func (cs *capturedStream) frame(i int) []byte { return cs.buf[cs.offs[i]:cs.offs[i+1]] }
func (cs *capturedStream) n() int             { return len(cs.times) }

// captureStream drives the lab's shared-bottleneck scenario and records
// switch 0's mirror-port sample stream.
func captureStream(t *testing.T) (*capturedStream, core.Config, core.PortMapper) {
	t.Helper()
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := lab.New(lab.Options{Net: net, Mirror: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cs := &capturedStream{}
	l.Collectors[0].OnFrame = cs.add

	for i := 0; i < 3; i++ {
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(3), uint16(5001+i), 4<<20, int32(1+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Hosts[1].StartFlow(0, topo.HostIP(2), 6001, 256<<10, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Hosts[2].StartCBR(0, topo.HostIP(0), 7001, 1000, units.Rate(500*units.Mbps), 11); err != nil {
		t.Fatal(err)
	}
	l.Run(120 * units.Millisecond)

	if cs.n() < 5000 {
		t.Fatalf("capture too small to exercise the fleet: %d samples", cs.n())
	}
	ccfg := core.Config{SwitchName: "sw0", NumPorts: len(net.Ports[0]), LinkRate: net.LineRate}
	return cs, ccfg, routing.StaticView(net, 0)
}

func renderEvent(ev core.CongestionEvent) string {
	flows := append([]core.FlowInfo(nil), ev.Flows...)
	// Flow annotation order is the one representation detail that may
	// legitimately differ between monolith and plane (swap-remove
	// bookkeeping); normalize it before comparing.
	sort.Slice(flows, func(i, j int) bool {
		return fmt.Sprintf("%+v", flows[i].Key) < fmt.Sprintf("%+v", flows[j].Key)
	})
	return fmt.Sprintf("t=%d %s port=%d util=%d cap=%d flows=%+v",
		ev.Time, ev.SwitchName, ev.Port, ev.Util, ev.Capacity, flows)
}

// report is everything the oracle compares.
type report struct {
	events  []string
	utils   []units.Rate
	rates   map[string]units.Rate // flows with a rate estimate
	flows   int
	expired int
}

// replayGlobal pushes the stream through one monolithic collector.
func replayGlobal(t *testing.T, cs *capturedStream, ccfg core.Config, mapper core.PortMapper) report {
	t.Helper()
	rep := report{rates: map[string]units.Rate{}, utils: make([]units.Rate, ccfg.NumPorts)}
	col := core.New(ccfg)
	col.SetPortMapper(mapper)
	col.Subscribe(func(ev core.CongestionEvent) { rep.events = append(rep.events, renderEvent(ev)) })
	mid := cs.n() / 2
	for i := 0; i < cs.n(); i++ {
		if err := col.Ingest(cs.times[i], cs.frame(i)); err != nil {
			t.Fatalf("global sample %d: %v", i, err)
		}
		if i == mid {
			rep.expired = col.ExpireFlows(cs.times[i], 2*units.Millisecond)
		}
	}
	for p := 0; p < ccfg.NumPorts; p++ {
		rep.utils[p] = col.LinkUtilization(p)
	}
	col.Flows(func(f *core.FlowState) {
		rep.flows++
		if r, ok := f.Rate(); ok {
			rep.rates[f.Key.String()] = r
		}
	})
	return rep
}

// replayFleet pushes the stream through n vantage collectors feeding
// one aggregation plane. With replicate=false frames are partitioned
// across vantages by flow hash (disjoint coverage); with replicate=true
// every vantage ingests every frame (fully overlapping coverage).
func replayFleet(t *testing.T, cs *capturedStream, ccfg core.Config, mapper core.PortMapper, n int, replicate bool) (report, *agg.Plane) {
	t.Helper()
	rep := report{rates: map[string]units.Rate{}, utils: make([]units.Rate, ccfg.NumPorts)}
	plane := agg.New(agg.Config{})
	plane.Subscribe(func(ev core.CongestionEvent) { rep.events = append(rep.events, renderEvent(ev)) })

	cols := make([]*core.Collector, n)
	for i := range cols {
		vc := ccfg
		v := plane.Join(0, ccfg.SwitchName, ccfg.NumPorts, ccfg.LinkRate)
		vc.Sink = v
		vc.Vantage = int(v.ID())
		cols[i] = core.New(vc)
		// Fleet collectors have no event subscribers: detection is the
		// plane's job. (A subscriber here would re-enable local
		// detection and double every event.)
		cols[i].SetPortMapper(mapper)
	}

	var d packet.Decoded
	mid := cs.n() / 2
	for i := 0; i < cs.n(); i++ {
		fr := cs.frame(i)
		if replicate {
			for _, c := range cols {
				if err := c.Ingest(cs.times[i], fr); err != nil {
					t.Fatalf("fleet sample %d: %v", i, err)
				}
			}
		} else {
			vi := 0
			if err := d.Decode(fr); err == nil {
				if k, ok := d.Flow(); ok {
					vi = int(core.HashFlowKey(k) % uint64(n))
				}
			}
			if err := cols[vi].Ingest(cs.times[i], fr); err != nil {
				t.Fatalf("fleet sample %d: %v", i, err)
			}
		}
		if i == mid {
			for _, c := range cols {
				c.ExpireFlows(cs.times[i], 2*units.Millisecond)
			}
			rep.expired = plane.ExpireFlows(cs.times[i], 2*units.Millisecond)
		}
	}
	plane.Flush()
	// The monolith's clock advances on every ingested frame, flow-bearing
	// or not; the plane only learns time from flow reports, and relies on
	// its periodic Tick (the lab wires one) to track idle tails. Align
	// the clocks the same way before the quiescent utilization read.
	plane.Tick(cs.times[cs.n()-1])
	for p := 0; p < ccfg.NumPorts; p++ {
		rep.utils[p] = plane.LinkUtilization(0, p)
	}
	rep.flows = plane.FlowCount()
	plane.EachFlow(func(sw int, fi core.FlowInfo, lastSeen units.Time) {
		if sw != 0 {
			t.Fatalf("EachFlow reported unknown switch %d", sw)
		}
		rep.rates[fi.Key.String()] = fi.Rate
	})
	return rep, plane
}

func TestFleetMatchesGlobalOracle(t *testing.T) {
	cs, ccfg, mapper := captureStream(t)

	global := replayGlobal(t, cs, ccfg, mapper)
	if len(global.events) == 0 {
		t.Fatal("scenario produced no congestion events; oracle would be vacuous")
	}
	if global.expired == 0 {
		t.Fatal("mid-replay expiry removed nothing; oracle would be vacuous")
	}
	if len(global.rates) == 0 {
		t.Fatal("scenario produced no rate estimates; oracle would be vacuous")
	}

	check := func(name string, got report, plane *agg.Plane) {
		t.Helper()
		if !reflect.DeepEqual(got.events, global.events) {
			t.Errorf("%s: events diverge (%d vs %d):\n got %v\nwant %v",
				name, len(got.events), len(global.events), got.events, global.events)
		}
		if !reflect.DeepEqual(got.utils, global.utils) {
			t.Errorf("%s: utils %v != global %v", name, got.utils, global.utils)
		}
		if !reflect.DeepEqual(got.rates, global.rates) {
			t.Errorf("%s: flow rates diverge:\n got %v\nwant %v", name, got.rates, global.rates)
		}
		if got.flows != global.flows {
			t.Errorf("%s: %d merged flow records != global %d", name, got.flows, global.flows)
		}
		if got.expired != global.expired {
			t.Errorf("%s: expired %d != global %d", name, got.expired, global.expired)
		}
		if m := plane.Merger(); m.Late != 0 {
			t.Errorf("%s: merger dropped %d candidates late; engine-ordered replay must never be late", name, m.Late)
		}
	}

	for _, n := range []int{2, 4, 20} {
		got, plane := replayFleet(t, cs, ccfg, mapper, n, false)
		check(fmt.Sprintf("fleet-%d", n), got, plane)
		if plane.Takeovers() != 0 || plane.DupReports() != 0 {
			t.Errorf("fleet-%d: disjoint partition saw %d takeovers / %d dup reports",
				n, plane.Takeovers(), plane.DupReports())
		}
	}

	// Fully overlapping coverage: two vantages each see the whole
	// stream. The doubled reports and candidates must collapse back to
	// the monolith's exact output, and the dedup machinery must have
	// actually fired (otherwise the overlap case is vacuous).
	got, plane := replayFleet(t, cs, ccfg, mapper, 2, true)
	check("overlap-2", got, plane)
	if plane.Takeovers() == 0 && plane.DupReports() == 0 {
		t.Error("overlap-2: no takeovers or dup reports; overlap dedup untested")
	}
	if plane.Merger().Deduped == 0 && plane.SuppressedCandidates() == 0 && plane.DupReports() == 0 {
		t.Error("overlap-2: no duplicate suppression anywhere in the plane")
	}
}
