// Package agg is the federated aggregation plane: the tier that sits
// between a fleet of per-mirror-port vantage collectors and the
// controller, merging each collector's partial view of the network into
// one network-wide picture.
//
// Planck's deployment model (§2, §3.1) gives every switch — or every
// group of switches sharing a mirror port — its own collector. Each
// collector sees only the flows crossing its vantage, estimates their
// rates locally, and reports per-flow samples and congestion candidates
// upward. The plane:
//
//   - folds per-flow reports into one record per (switch, flow),
//     deduplicating overlapping vantages by report time and routing
//     epoch (the newest report under the newest epoch wins);
//   - maintains per-switch per-egress-port link utilization with the
//     same freshness and rate-summing rules core.Collector applies, so
//     the fleet's aggregate is bit-identical to a hypothetical global
//     collector's view (the oracle in agg_test.go proves this);
//   - merges congestion-event candidates from all vantages through an
//     EventMerger that re-establishes network-wide stream order and
//     owns the per-link cooldown — so overlapping vantages, epoch skew,
//     and supervised collector restarts never duplicate an event;
//   - tracks vantage liveness, flagging collectors that stop reporting
//     as stale instead of silently serving their frozen flows forever.
//
// The plane is driven from the simulation engine goroutine (or any
// single caller goroutine); it is not internally synchronized, matching
// the serial core.Collector contract.
package agg

import (
	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/packet"
	"planck/internal/units"
)

// Config parameterizes the plane. The zero value takes the collector
// defaults for the shared thresholds, so a plane and the collectors
// feeding it agree on what "congested" and "fresh" mean.
type Config struct {
	// UtilThreshold, EventCooldown, and FlowFreshness mirror the
	// core.Config fields of the same names; zero values take the same
	// defaults, keeping plane-side detection coherent with what a
	// single global collector would decide.
	UtilThreshold float64
	EventCooldown units.Duration
	FlowFreshness units.Duration

	// StaleAfter is how long a vantage may go without reporting a
	// sample before Tick flags it stale (crashed, partitioned, or
	// simply dark). Default 2 ms — a handful of poll intervals.
	StaleAfter units.Duration

	// ReorderWindow bounds how far out-of-order vantage reports may
	// arrive. Zero (the default) emits synchronously: every candidate
	// advances the merge watermark to its own timestamp, which is exact
	// when vantages report in global time order (the lab's engine
	// guarantees this). A positive window buffers candidates and lets
	// Tick emit those older than now−window.
	ReorderWindow units.Duration

	// ExternalMergeAdvance stops Tick from advancing the event merger:
	// a transport receiver (internal/vantagelink) owns the merge clock
	// and drives it through AdvanceMerge with its delivery watermark,
	// so wall-clock ticks can never outrun reports still in flight on
	// the channel and drop their candidates as Late.
	ExternalMergeAdvance bool

	// Metrics, when non-nil, receives the planck_agg_* instruments.
	Metrics *obs.Registry

	// Tracer, when non-nil, opens a control-loop span for every merged
	// event the plane emits (the detection end of the causal trace).
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	cc := core.Config{}.WithDefaults()
	if c.UtilThreshold == 0 {
		c.UtilThreshold = cc.UtilThreshold
	}
	if c.EventCooldown == 0 {
		c.EventCooldown = cc.EventCooldown
	}
	if c.FlowFreshness == 0 {
		c.FlowFreshness = cc.FlowFreshness
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 2 * units.Millisecond
	}
	return c
}

// flowAt keys the plane's flow map: one record per flow per monitored
// switch (the same flow legitimately appears at every hop it crosses).
type flowAt struct {
	sw  int32
	key packet.FlowKey
}

// aggFlow is the plane's merged record for one flow at one switch:
// exactly the fields the utilization and event paths read, plus the
// provenance (vantage, epoch) the cross-vantage dedup needs.
type aggFlow struct {
	key      packet.FlowKey
	sw       *planeSwitch
	dstMAC   packet.MAC
	vantage  VantageID // vantage whose report currently owns the record
	port     int32     // egress port at sw, -1 unknown
	pos      int32     // position in sw.ports[port], -1 unlisted
	rateOK   bool
	rate     units.Rate
	epoch    uint64 // routing epoch the port was resolved under
	lastSeen units.Time
}

// planeSwitch is the plane's per-monitored-switch state: the egress
// port lists the utilization sum walks, plus the vantages covering the
// switch (for the all-stale fallback check).
type planeSwitch struct {
	id       int32
	name     string
	capacity units.Rate
	ports    [][]*aggFlow
	vantages []*Vantage
}

type planeMetrics struct {
	updates    obs.Counter // flow reports folded in
	flows      obs.Gauge   // live merged flow records
	events     obs.Counter // merged events emitted to subscribers
	dupReports obs.Counter // overlap reports dropped (older time/epoch)
	takeovers  obs.Counter // records that changed owning vantage
	suppressed obs.Counter // candidates skipped by the cooldown pre-check
	staleVant  obs.Gauge   // vantages currently flagged stale
	restarts   obs.Counter // vantage Rejoin calls (supervised restarts)
	fallback   obs.Counter // utilization queries served by an sFlow fallback
}

// Plane is the aggregation tier. Build one with New, hand each
// collector a sink from Join, subscribe the controller with Subscribe,
// and drive liveness with Tick.
type Plane struct {
	cfg      Config
	vantages []*Vantage
	switches map[int32]*planeSwitch
	flows    map[flowAt]*aggFlow
	merger   *EventMerger
	subs     []func(ev core.CongestionEvent)
	now      units.Time
	met      planeMetrics
}

// New builds an empty plane.
func New(cfg Config) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:      cfg,
		switches: make(map[int32]*planeSwitch),
		flows:    make(map[flowAt]*aggFlow),
	}
	p.merger = NewEventMerger(cfg.EventCooldown, p.emitMerged)
	if m := cfg.Metrics; m != nil {
		m.MustRegister("planck_agg_updates_total", &p.met.updates)
		m.MustRegister("planck_agg_flows", &p.met.flows)
		m.MustRegister("planck_agg_events_total", &p.met.events)
		m.MustRegister("planck_agg_dup_flow_reports_total", &p.met.dupReports)
		m.MustRegister("planck_agg_flow_takeovers_total", &p.met.takeovers)
		m.MustRegister("planck_agg_events_suppressed_total", &p.met.suppressed)
		m.MustRegister("planck_agg_events_deduped_total", obs.GaugeFunc(func() float64 { return float64(p.merger.Deduped) }))
		m.MustRegister("planck_agg_events_late_total", obs.GaugeFunc(func() float64 { return float64(p.merger.Late) }))
		m.MustRegister("planck_agg_vantages", obs.GaugeFunc(func() float64 { return float64(len(p.vantages)) }))
		m.MustRegister("planck_agg_stale_vantages", &p.met.staleVant)
		m.MustRegister("planck_agg_vantage_restarts_total", &p.met.restarts)
		m.MustRegister("planck_agg_fallback_util_total", &p.met.fallback)
	}
	return p
}

// Join registers a vantage collector monitoring switch sw and returns
// its sink. Multiple vantages may join the same switch (overlapping
// mirror coverage); they share the switch's merged flow records. The
// returned Vantage implements core.AggregationSink — set it as the
// collector's Config.Sink.
func (p *Plane) Join(sw int, switchName string, numPorts int, capacity units.Rate) *Vantage {
	ps := p.switches[int32(sw)]
	if ps == nil {
		ps = &planeSwitch{
			id:       int32(sw),
			name:     switchName,
			capacity: capacity,
			ports:    make([][]*aggFlow, numPorts),
		}
		p.switches[int32(sw)] = ps
	}
	v := &Vantage{p: p, id: VantageID(len(p.vantages) + 1), sw: ps}
	p.vantages = append(p.vantages, v)
	ps.vantages = append(ps.vantages, v)
	return v
}

// Subscribe registers fn for merged network-wide congestion events.
func (p *Plane) Subscribe(fn func(ev core.CongestionEvent)) {
	p.subs = append(p.subs, fn)
}

// emitMerged is the merger's output hook: stamp a trace span on the
// event and fan out to subscribers.
func (p *Plane) emitMerged(ev core.CongestionEvent) {
	if tr := p.cfg.Tracer; tr != nil {
		ev.ID = tr.NextID()
		tr.Begin(ev.ID, ev.Time, ev.SwitchName, ev.Port, ev.Epoch, ev.Util, ev.Capacity)
	}
	p.met.events.Inc()
	for _, fn := range p.subs {
		fn(ev)
	}
}

// Tick advances plane housekeeping to now: re-evaluates vantage
// staleness and, with a positive ReorderWindow, releases buffered event
// candidates older than now−window. Drive it from a periodic ticker.
//
// Staleness is judged on lastRecv — when the vantage last *reached*
// the plane, on the plane's own clock — never on the report content
// timestamps, which belong to the collector's (possibly skewed) clock.
// A skewed-but-healthy vantage therefore stays live, and a partitioned
// one flips stale even while its pre-partition reports are still
// draining out of the transport.
func (p *Plane) Tick(now units.Time) {
	if now > p.now {
		p.now = now
	}
	stale := int64(0)
	for _, v := range p.vantages {
		v.stale = now.Sub(v.lastRecv) > p.cfg.StaleAfter
		if v.stale {
			stale++
		}
	}
	p.met.staleVant.Set(stale)
	if w := p.cfg.ReorderWindow; w > 0 && !p.cfg.ExternalMergeAdvance {
		p.merger.AdvanceTo(now.Add(-w))
	}
}

// AdvanceMerge advances the event merger's release clock to the
// transport receiver's delivery watermark: every report timestamped
// ≤ now has been folded in, so candidates older than now−ReorderWindow
// can be emitted in final order. The owner of the merge clock under
// Config.ExternalMergeAdvance.
func (p *Plane) AdvanceMerge(now units.Time) {
	if now > p.now {
		p.now = now
	}
	if w := p.cfg.ReorderWindow; w > 0 {
		p.merger.AdvanceTo(now.Add(-w))
	} else {
		p.merger.AdvanceTo(now)
	}
}

// Flush drains any buffered event candidates (end of run).
func (p *Plane) Flush() { p.merger.Flush() }

// ExpireFlows drops merged records idle longer than idle, mirroring
// core.Collector.ExpireFlows. Returns the number dropped.
func (p *Plane) ExpireFlows(now units.Time, idle units.Duration) int {
	n := 0
	for k, af := range p.flows {
		if now.Sub(af.lastSeen) > idle {
			p.moveFlow(af, -1)
			delete(p.flows, k)
			n++
		}
	}
	if n > 0 {
		p.met.flows.Set(int64(len(p.flows)))
	}
	return n
}

// LinkUtilization sums the fresh flow rates merged onto (sw, port) as
// of the plane's current time — the network-wide answer to the query a
// single collector answers for its own switch. While every vantage
// covering the switch is stale (channel partitioned or collectors
// dark) and one of them registered a fallback estimator, the fallback
// answers instead of the frozen merged flows.
func (p *Plane) LinkUtilization(sw, port int) units.Rate {
	ps := p.switches[int32(sw)]
	if ps == nil || port < 0 || port >= len(ps.ports) {
		return 0
	}
	if fb := p.fallbackFor(ps); fb != nil {
		p.met.fallback.IncRelaxed()
		return fb(port)
	}
	return p.linkUtilAt(ps, int32(port), p.now)
}

// fallbackFor returns the switch's degraded-mode utilization source:
// non-nil only when every vantage covering ps is stale and at least
// one of them has a fallback registered (Vantage.SetFallback).
func (p *Plane) fallbackFor(ps *planeSwitch) func(port int) units.Rate {
	var fb func(port int) units.Rate
	for _, v := range ps.vantages {
		if !v.stale {
			return nil
		}
		if fb == nil && v.fallback != nil {
			fb = v.fallback
		}
	}
	return fb
}

// EachFlow visits every merged flow record with a rate estimate —
// the te.NetworkSource seam PlanckTE consumes instead of polling
// per-switch collectors.
func (p *Plane) EachFlow(fn func(sw int, fi core.FlowInfo, lastSeen units.Time)) {
	for _, af := range p.flows {
		if !af.rateOK {
			continue
		}
		fn(int(af.sw.id), core.FlowInfo{
			Key:     af.key,
			DstMAC:  af.dstMAC,
			Rate:    af.rate,
			OutPort: int(af.port),
		}, af.lastSeen)
	}
}

// FlowCount returns the number of live merged flow records.
func (p *Plane) FlowCount() int { return len(p.flows) }

// Now returns the newest report or tick time the plane has seen.
func (p *Plane) Now() units.Time { return p.now }

// Merger exposes the event merger (counters, watermark) for tests and
// dashboards.
func (p *Plane) Merger() *EventMerger { return p.merger }

// StaleVantages returns the vantages flagged stale by the last Tick.
func (p *Plane) StaleVantages() []*Vantage {
	var out []*Vantage
	for _, v := range p.vantages {
		if v.stale {
			out = append(out, v)
		}
	}
	return out
}

// Vantages returns the number of joined vantages.
func (p *Plane) Vantages() int { return len(p.vantages) }

// DupReports returns the count of overlap reports dropped by the
// cross-vantage dedup.
func (p *Plane) DupReports() int64 { return p.met.dupReports.Value() }

// Takeovers returns the count of records that changed owning vantage.
func (p *Plane) Takeovers() int64 { return p.met.takeovers.Value() }

// SuppressedCandidates returns the count of congestion candidates
// skipped by the cooldown pre-check before an event was even built.
func (p *Plane) SuppressedCandidates() int64 { return p.met.suppressed.Value() }

// FallbackServes returns how many LinkUtilization calls were answered
// by a stale vantage's registered fallback estimator.
func (p *Plane) FallbackServes() int64 { return p.met.fallback.Value() }

// linkUtilAt mirrors core.Collector.LinkUtilization: sum the rates of
// fresh, rate-bearing flows on the port.
func (p *Plane) linkUtilAt(ps *planeSwitch, port int32, now units.Time) units.Rate {
	var util units.Rate
	for _, af := range ps.ports[port] {
		if now.Sub(af.lastSeen) > p.cfg.FlowFreshness {
			continue
		}
		if af.rateOK {
			util += af.rate
		}
	}
	return util
}

// flowsOn mirrors core.Collector.FlowsOnPort: snapshot the fresh flows
// on the port (rate 0 for flows without an estimate yet).
func (p *Plane) flowsOn(ps *planeSwitch, port int32, now units.Time) []core.FlowInfo {
	l := ps.ports[port]
	out := make([]core.FlowInfo, 0, len(l))
	for _, af := range l {
		if now.Sub(af.lastSeen) > p.cfg.FlowFreshness {
			continue
		}
		out = append(out, core.FlowInfo{Key: af.key, DstMAC: af.dstMAC, Rate: af.rate, OutPort: int(port)})
	}
	return out
}

// moveFlow changes a record's port-list membership (swap-remove from
// the old list, append to the new), the same bookkeeping the collector
// and the sharded merger use.
func (p *Plane) moveFlow(af *aggFlow, newPort int32) {
	sw := af.sw
	if af.port >= 0 && int(af.port) < len(sw.ports) {
		l := sw.ports[af.port]
		last := int32(len(l) - 1)
		l[af.pos] = l[last]
		l[af.pos].pos = af.pos
		sw.ports[af.port] = l[:last]
	}
	af.port = newPort
	af.pos = -1
	if newPort >= 0 && int(newPort) < len(sw.ports) {
		sw.ports[newPort] = append(sw.ports[newPort], af)
		af.pos = int32(len(sw.ports[newPort]) - 1)
	}
}

// detect replays the collector's congestion check against the merged
// view after a rate-updating sample: same freshness-limited utilization
// sum, same threshold comparison, and — via the merger — the same
// per-link cooldown arithmetic a global collector would apply.
func (p *Plane) detect(v *Vantage, t units.Time, af *aggFlow) {
	if len(p.subs) == 0 && p.cfg.Tracer == nil {
		return
	}
	sw := af.sw
	port := af.port
	if port < 0 || int(port) >= len(sw.ports) {
		return
	}
	util := p.linkUtilAt(sw, port, t)
	if float64(util) < p.cfg.UtilThreshold*float64(sw.capacity) {
		return
	}
	link := LinkKey{Switch: sw.id, Port: port}
	// Allocation-free pre-check: if the link is inside cooldown there is
	// no point building the event's flow snapshot. False negatives
	// (candidates still buffered in the merger) are caught at emission.
	if p.merger.Suppressed(link, t) {
		p.met.suppressed.IncRelaxed()
		return
	}
	ev := core.CongestionEvent{
		Time:       t,
		SwitchName: sw.name,
		Port:       int(port),
		Util:       util,
		Capacity:   sw.capacity,
		Flows:      p.flowsOn(sw, port, t),
		Epoch:      af.epoch,
		Vantage:    int(v.id),
	}
	v.seq++
	p.merger.Offer(link, v.id, v.seq, ev)
	if p.cfg.ReorderWindow == 0 {
		p.merger.AdvanceTo(t)
	}
}

// Vantage is one collector's handle on the plane. It implements
// core.AggregationSink: set it as the collector's Config.Sink (or as a
// transport receiver's delivery target) and the collector reports
// every flow sample here.
type Vantage struct {
	p          *Plane
	id         VantageID
	sw         *planeSwitch
	seq        uint64     // private offer counter for the merger's total order
	lastReport units.Time // newest report content time (collector clock)
	lastRecv   units.Time // when the vantage last reached the plane (plane clock)
	transport  bool       // liveness owned by a transport receiver's NoteLive
	stale      bool
	restarts   int64
	fallback   func(port int) units.Rate
}

// ID returns the vantage's plane-assigned identifier (1-based).
func (v *Vantage) ID() VantageID { return v.id }

// Switch returns the monitored switch's index.
func (v *Vantage) Switch() int { return int(v.sw.id) }

// Stale reports whether the last Tick flagged this vantage stale.
func (v *Vantage) Stale() bool { return v.stale }

// NoteLive marks the vantage live as of the plane's receive clock —
// a transport receiver calls it for every frame (data or heartbeat)
// that arrives from the vantage, so liveness tracks the channel, not
// the collector's (possibly skewed) report timestamps.
func (v *Vantage) NoteLive(now units.Time) {
	if now > v.lastRecv {
		v.lastRecv = now
	}
	v.stale = false
}

// BindTransport marks the vantage transport-driven: liveness comes
// solely from the receiver's NoteLive calls and Report stops
// refreshing it, so a dead channel flips the vantage stale even while
// buffered pre-partition reports are still draining into the plane.
func (v *Vantage) BindTransport() { v.transport = true }

// SetFallback registers fn as this vantage's degraded-mode
// utilization source (typically the supervisor's sFlow-bucket
// estimator). While every vantage covering the switch is stale,
// Plane.LinkUtilization serves the fallback instead of the frozen
// merged flows.
func (v *Vantage) SetFallback(fn func(port int) units.Rate) { v.fallback = fn }

// Restarts returns how many times Rejoin has been called.
func (v *Vantage) Restarts() int64 { return v.restarts }

// Rejoin records a supervised restart of the vantage's collector. The
// plane keeps the vantage's merged flows and — critically — the
// merger's per-link cooldown anchors, so a restarted collector
// re-reporting the same congestion cannot duplicate an event the fleet
// already emitted.
func (v *Vantage) Rejoin() {
	v.restarts++
	v.p.met.restarts.Inc()
}

// Report implements core.AggregationSink: fold one per-flow sample
// from this vantage into the merged view and, when the sample closed a
// rate-estimation window, run plane-side congestion detection — the
// same trigger discipline core.Collector.checkCongestion uses.
func (v *Vantage) Report(rep *core.FlowReport) {
	p := v.p
	t := rep.Time
	if t > p.now {
		p.now = t
	}
	v.lastReport = t
	if !v.transport {
		// In-process delivery: receive time and report time are the same
		// clock, so the report itself refreshes liveness. A transport
		// receiver calls NoteLive instead.
		if t > v.lastRecv {
			v.lastRecv = t
		}
		v.stale = false
	}
	p.met.updates.IncRelaxed()

	k := flowAt{sw: v.sw.id, key: rep.Key}
	af := p.flows[k]
	if af == nil {
		af = &aggFlow{key: rep.Key, sw: v.sw, vantage: v.id, port: -1, pos: -1}
		p.flows[k] = af
		p.met.flows.Add(1)
	} else if af.vantage != v.id {
		// Cross-vantage dedup for overlapping coverage: a report that is
		// older than what the record already holds, or resolved under an
		// older routing epoch, is a duplicate of information we have.
		// Otherwise the newer vantage takes the record over.
		if t < af.lastSeen || rep.Epoch < af.epoch {
			p.met.dupReports.IncRelaxed()
			return
		}
		af.vantage = v.id
		p.met.takeovers.IncRelaxed()
	}

	af.lastSeen = t
	af.dstMAC = rep.DstMAC
	af.epoch = rep.Epoch
	af.rate, af.rateOK = rep.Rate, rep.RateOK
	if np := int32(rep.OutPort); np != af.port {
		p.moveFlow(af, np)
	}
	if rep.RateUpdated {
		p.detect(v, t, af)
	}
}
