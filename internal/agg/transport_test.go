package agg_test

import (
	"fmt"
	"reflect"
	"testing"

	"planck/internal/agg"
	"planck/internal/core"
	"planck/internal/faults"
	"planck/internal/packet"
	"planck/internal/units"
	"planck/internal/vantagelink"
)

// The transport oracle extends the fleet-vs-global oracle across the
// wire: the same captured sample stream replays through vantage
// collectors whose sink is a vantagelink.Sender feeding one shared
// Receiver over a lossy in-memory channel, driven by a virtual clock.
// After the link drains — every gap NACKed and recovered, the merge
// heap released — the plane's events, utilizations, flow rates, and
// expiry count must still match the monolith to the bit. Loss delays
// federation; it must never change what the fleet concludes.

const (
	pumpDelay = 20 * units.Microsecond  // one-way channel latency
	pumpStep  = 250 * units.Microsecond // endpoint tick cadence
)

type pumpEvent struct {
	at units.Time
	fn func(units.Time)
}

// linkPump is a minimal virtual-time scheduler for the in-memory
// channel: datagrams in flight are events due at send time + delay,
// and endpoint Ticks fire on a fixed cadence between deliveries.
type linkPump struct {
	now      units.Time
	nextTick units.Time
	q        []pumpEvent
	head     int
}

func (p *linkPump) after(d units.Duration, fn func(units.Time)) {
	at := p.now.Add(d)
	i := len(p.q)
	// Constant delay keeps appends monotone; insert-sort is the guard.
	for i > p.head && p.q[i-1].at > at {
		i--
	}
	p.q = append(p.q, pumpEvent{})
	copy(p.q[i+1:], p.q[i:])
	p.q[i] = pumpEvent{at: at, fn: fn}
}

func (p *linkPump) run(to units.Time, tick func(units.Time)) {
	if p.nextTick == 0 {
		p.nextTick = units.Time(pumpStep)
	}
	for p.now < to {
		next := to
		if p.nextTick < next {
			next = p.nextTick
		}
		if p.head < len(p.q) && p.q[p.head].at < next {
			next = p.q[p.head].at
		}
		if next > p.now {
			p.now = next
		}
		for p.head < len(p.q) && p.q[p.head].at <= p.now {
			ev := p.q[p.head]
			p.head++
			ev.fn(p.now)
		}
		if p.now >= p.nextTick {
			tick(p.now)
			p.nextTick = p.nextTick.Add(pumpStep)
		}
	}
}

// planeSink adapts one plane vantage to the receiver's delivery seam.
type planeSink struct{ v *agg.Vantage }

func (a planeSink) Report(rep *core.FlowReport) { a.v.Report(rep) }
func (a planeSink) Live(now units.Time)         { a.v.NoteLive(now) }
func (a planeSink) Rejoin(uint32)               { a.v.Rejoin() }

type transportOpts struct {
	n         int
	replicate bool
	window    units.Duration
	lossProb  float64
	skew      func(i int) units.Duration // per-vantage sender clock skew
	noSync    bool                       // black-hole sync replies (negative control)
}

type transportFleet struct {
	pump    *linkPump
	plane   *agg.Plane
	recv    *vantagelink.Receiver
	senders []*vantagelink.Sender
	cols    []*core.Collector
	rep     report
}

// newTransportFleet wires n vantage collectors to one plane over the
// virtual-clock link. end clamps the plane's merge clock: the drain
// phase runs virtual time past the capture, and utilization freshness
// must still be judged at the capture's end, like the monolith's.
func newTransportFleet(ccfg core.Config, mapper core.PortMapper, o transportOpts, end units.Time) *transportFleet {
	tf := &transportFleet{
		pump:    &linkPump{},
		senders: make([]*vantagelink.Sender, o.n),
		cols:    make([]*core.Collector, o.n),
	}
	tf.rep = report{rates: map[string]units.Rate{}, utils: make([]units.Rate, ccfg.NumPorts)}
	tf.plane = agg.New(agg.Config{ReorderWindow: o.window, ExternalMergeAdvance: true})
	tf.plane.Subscribe(func(ev core.CongestionEvent) {
		tf.rep.events = append(tf.rep.events, renderEvent(ev))
	})
	// Single-record frames make the overlap replay peak above a
	// thousand frames per millisecond, so the resequencing buffer must
	// hold several milliseconds of stream or overflow re-fetches
	// inflate the gap load.
	tf.recv = vantagelink.NewReceiver(vantagelink.ReceiverConfig{MaxBuffered: 8192})
	tf.recv.OnAdvance = func(wm units.Time) {
		if wm > end {
			wm = end
		}
		tf.plane.AdvanceMerge(wm)
	}

	var sched *faults.Schedule
	if o.lossProb > 0 {
		sched = faults.NewSchedule(faults.Rule{
			Kind: faults.KindLoss, From: 0, To: faults.Forever, Prob: o.lossProb,
		})
	}
	for i := 0; i < o.n; i++ {
		v := tf.plane.Join(0, ccfg.SwitchName, ccfg.NumPorts, ccfg.LinkRate)
		fwd := vantagelink.ChannelFunc(func(_ units.Time, dgram []byte) error {
			cp := append([]byte(nil), dgram...)
			tf.pump.after(pumpDelay, func(at units.Time) { tf.recv.HandleDatagram(at, cp) })
			return nil
		})
		// Every Ingest is its own batch here, so frames carry one record
		// and the peak frame rate tracks the capture's sample rate
		// (~230/ms during the TCP ramp). The retransmit ring must cover
		// peak rate × worst-case recovery (a few backoff rounds at 10%
		// loss, ~5ms), or the advertised trail overtakes live gaps and
		// recovery degrades to abandonment.
		scfg := vantagelink.SenderConfig{
			Vantage:     uint16(v.ID()),
			SwitchName:  ccfg.SwitchName,
			RingFrames:  16384,
			QueueFrames: 1024,
		}
		if o.skew != nil {
			skew := o.skew(i)
			scfg.ClockSkew = func(units.Time) units.Duration { return skew }
		}
		snd := vantagelink.NewSender(vantagelink.NewFaultGate(fwd, sched, int64(31+i*6151)), scfg)
		rev := vantagelink.ChannelFunc(func(_ units.Time, dgram []byte) error {
			if o.noSync {
				return nil
			}
			cp := append([]byte(nil), dgram...)
			tf.pump.after(pumpDelay, func(at units.Time) { snd.HandleControl(at, cp) })
			return nil
		})
		tf.recv.Join(uint16(v.ID()), planeSink{v: v}, rev)
		v.BindTransport()
		tf.senders[i] = snd

		vc := ccfg
		vc.Sink = snd
		vc.Vantage = int(v.ID())
		tf.cols[i] = core.New(vc)
		tf.cols[i].SetPortMapper(mapper)
	}
	return tf
}

func (tf *transportFleet) tick(now units.Time) {
	for _, s := range tf.senders {
		s.Tick(now)
	}
	tf.recv.Tick(now)
}

// replayTransport pushes the captured stream through the fleet over
// the link, then drains: virtual time keeps running until every gap is
// recovered, the heap force-releases, and the merger flushes.
func replayTransport(t *testing.T, cs *capturedStream, ccfg core.Config, mapper core.PortMapper, o transportOpts) (*transportFleet, report) {
	t.Helper()
	end := cs.times[cs.n()-1]
	tf := newTransportFleet(ccfg, mapper, o, end)

	var d packet.Decoded
	for i := 0; i < cs.n(); i++ {
		tf.pump.run(cs.times[i], tf.tick)
		fr := cs.frame(i)
		if o.replicate {
			for _, c := range tf.cols {
				if err := c.Ingest(cs.times[i], fr); err != nil {
					t.Fatalf("transport sample %d: %v", i, err)
				}
			}
			continue
		}
		vi := 0
		if err := d.Decode(fr); err == nil {
			if k, ok := d.Flow(); ok {
				vi = int(core.HashFlowKey(k) % uint64(o.n))
			}
		}
		if err := tf.cols[vi].Ingest(cs.times[i], fr); err != nil {
			t.Fatalf("transport sample %d: %v", i, err)
		}
	}

	// Drain: NACK rounds need wall time, so pump in chunks until no
	// gap is outstanding, plus one chunk for the last frames in flight.
	deadline := end.Add(100 * units.Millisecond)
	for tf.pump.now < deadline {
		tf.pump.run(tf.pump.now.Add(units.Duration(units.Millisecond)), tf.tick)
		if tf.recv.OutstandingGaps() == 0 {
			tf.pump.run(tf.pump.now.Add(units.Duration(units.Millisecond)), tf.tick)
			break
		}
	}
	if g := tf.recv.OutstandingGaps(); g != 0 {
		t.Fatalf("%d gaps still outstanding after %v of drain", g, tf.pump.now.Sub(end))
	}
	tf.recv.Drain()
	tf.plane.Flush()
	tf.plane.Tick(end)
	for p := 0; p < ccfg.NumPorts; p++ {
		tf.rep.utils[p] = tf.plane.LinkUtilization(0, p)
	}
	tf.rep.flows = tf.plane.FlowCount()
	tf.plane.EachFlow(func(sw int, fi core.FlowInfo, lastSeen units.Time) {
		if sw != 0 {
			t.Fatalf("EachFlow reported unknown switch %d", sw)
		}
		tf.rep.rates[fi.Key.String()] = fi.Rate
	})
	// Expiry equality is checked at the quiescent end rather than
	// mid-replay: a mid-stream expiry would race reports still in
	// flight on the link, and pumping the link dry mid-stream would
	// push heartbeat stamps past the remaining samples.
	tf.rep.expired = tf.plane.ExpireFlows(end, 2*units.Millisecond)
	return tf, tf.rep
}

// replayGlobalQuiescent is replayGlobal without the mid-replay expiry:
// the transport oracle compares expiry at the drained end instead.
func replayGlobalQuiescent(t *testing.T, cs *capturedStream, ccfg core.Config, mapper core.PortMapper) report {
	t.Helper()
	rep := report{rates: map[string]units.Rate{}, utils: make([]units.Rate, ccfg.NumPorts)}
	col := core.New(ccfg)
	col.SetPortMapper(mapper)
	col.Subscribe(func(ev core.CongestionEvent) { rep.events = append(rep.events, renderEvent(ev)) })
	for i := 0; i < cs.n(); i++ {
		if err := col.Ingest(cs.times[i], cs.frame(i)); err != nil {
			t.Fatalf("global sample %d: %v", i, err)
		}
	}
	for p := 0; p < ccfg.NumPorts; p++ {
		rep.utils[p] = col.LinkUtilization(p)
	}
	col.Flows(func(f *core.FlowState) {
		rep.flows++
		if r, ok := f.Rate(); ok {
			rep.rates[f.Key.String()] = r
		}
	})
	rep.expired = col.ExpireFlows(cs.times[cs.n()-1], 2*units.Millisecond)
	return rep
}

// monotonizeCapture makes sample times strictly increasing by bumping
// ties forward one nanosecond (cascading). The bit-exactness argument
// leans on distinct record times: they make the receiver's
// cross-vantage merge order equal to capture order, so ties — samples
// landing on the same engine timestamp — are resolved by arrival order
// before BOTH replays see the stream. The comparison stays
// same-input-vs-same-input.
func monotonizeCapture(cs *capturedStream) {
	for i := 1; i < cs.n(); i++ {
		if cs.times[i] <= cs.times[i-1] {
			cs.times[i] = cs.times[i-1] + 1
		}
	}
}

func TestFleetMatchesGlobalOracleOverTransport(t *testing.T) {
	cs, ccfg, mapper := captureStream(t)
	monotonizeCapture(cs)

	global := replayGlobalQuiescent(t, cs, ccfg, mapper)
	if len(global.events) == 0 || len(global.rates) == 0 {
		t.Fatal("scenario produced no events or rates; oracle would be vacuous")
	}
	if global.expired == 0 {
		t.Fatal("end-of-run expiry removed nothing; oracle would be vacuous")
	}

	check := func(name string, tf *transportFleet, got report) {
		t.Helper()
		if !reflect.DeepEqual(got.events, global.events) {
			t.Errorf("%s: events diverge (%d vs %d):\n got %v\nwant %v",
				name, len(got.events), len(global.events), got.events, global.events)
		}
		if !reflect.DeepEqual(got.utils, global.utils) {
			t.Errorf("%s: utils %v != global %v", name, got.utils, global.utils)
		}
		if !reflect.DeepEqual(got.rates, global.rates) {
			t.Errorf("%s: flow rates diverge:\n got %v\nwant %v", name, got.rates, global.rates)
		}
		if got.flows != global.flows {
			t.Errorf("%s: %d merged flow records != global %d", name, got.flows, global.flows)
		}
		if got.expired != global.expired {
			t.Errorf("%s: expired %d != global %d", name, got.expired, global.expired)
		}
		if m := tf.plane.Merger(); m.Late != 0 {
			t.Errorf("%s: merger dropped %d candidates late", name, m.Late)
		}
		if l := tf.recv.LateRecords(); l != 0 {
			t.Errorf("%s: %d records arrived below the delivery watermark", name, l)
		}
		if a := tf.recv.Abandoned(); a != 0 {
			t.Errorf("%s: %d gaps abandoned; exactness requires full recovery", name, a)
		}
		for i, s := range tf.senders {
			if s.Sheds() != 0 {
				t.Errorf("%s: sender %d shed %d frames under a non-overload replay", name, i, s.Sheds())
			}
		}
	}
	// The lossy run is only meaningful if loss actually hit and the
	// NACK loop actually recovered it.
	requireLoss := func(name string, tf *transportFleet) {
		t.Helper()
		if tf.recv.GapsDetected() == 0 {
			t.Fatalf("%s: no gaps detected; the lossy channel dropped nothing", name)
		}
		resends := int64(0)
		for _, s := range tf.senders {
			resends += s.Resends()
		}
		if resends == 0 {
			t.Fatalf("%s: no retransmits; recovery untested", name)
		}
	}

	tf, got := replayTransport(t, cs, ccfg, mapper, transportOpts{n: 4, lossProb: 0.10})
	check("transport-4-loss10", tf, got)
	requireLoss("transport-4-loss10", tf)
	if tf.plane.Takeovers() != 0 || tf.plane.DupReports() != 0 {
		t.Errorf("transport-4-loss10: disjoint partition saw %d takeovers / %d dup reports",
			tf.plane.Takeovers(), tf.plane.DupReports())
	}

	// Fully overlapping coverage over the lossy link: cross-vantage
	// dedup must still collapse the doubled stream exactly.
	tf, got = replayTransport(t, cs, ccfg, mapper, transportOpts{n: 2, replicate: true, lossProb: 0.05})
	check("transport-overlap-2-loss5", tf, got)
	requireLoss("transport-overlap-2-loss5", tf)
	if tf.plane.Takeovers() == 0 && tf.plane.DupReports() == 0 {
		t.Error("transport-overlap-2: no takeovers or dup reports; overlap dedup untested")
	}
}

// TestSoakReorderWindow is the skew soak: each vantage's sender clock
// runs off-true by a constant multi-millisecond skew, and the plane runs
// with positive reorder windows. Clock sync must cancel every skew
// exactly, so the fleet's event stream matches the ReorderWindow=0
// unskewed monolith bit for bit at every window size. The negative
// control black-holes sync replies: uncorrected skewed stamps must
// visibly diverge, proving the soak can actually catch a bad clock.
func TestSoakReorderWindow(t *testing.T) {
	cs, ccfg, mapper := captureStream(t)
	monotonizeCapture(cs)

	global := replayGlobalQuiescent(t, cs, ccfg, mapper)
	if len(global.events) == 0 {
		t.Fatal("scenario produced no events; soak would be vacuous")
	}

	skews := []units.Duration{
		2500 * units.Microsecond,
		-1800 * units.Microsecond,
		800 * units.Microsecond,
		-3100 * units.Microsecond,
	}
	skewFn := func(i int) units.Duration { return skews[i%len(skews)] }

	for _, window := range []units.Duration{
		units.Duration(units.Millisecond),
		5 * units.Millisecond,
		20 * units.Millisecond,
	} {
		name := fmt.Sprintf("window-%v", window)
		tf, got := replayTransport(t, cs, ccfg, mapper, transportOpts{
			n: len(skews), window: window, skew: skewFn,
		})
		if !reflect.DeepEqual(got.events, global.events) {
			t.Errorf("%s: skewed fleet events diverge from unskewed oracle (%d vs %d):\n got %v\nwant %v",
				name, len(got.events), len(global.events), got.events, global.events)
		}
		if !reflect.DeepEqual(got.utils, global.utils) {
			t.Errorf("%s: utils %v != global %v", name, got.utils, global.utils)
		}
		if m := tf.plane.Merger(); m.Late != 0 {
			t.Errorf("%s: merger dropped %d candidates late", name, m.Late)
		}
		for i, s := range tf.senders {
			off, ok := s.Offset()
			if !ok {
				t.Fatalf("%s: sender %d never completed clock sync", name, i)
			}
			if off != -skews[i] {
				t.Errorf("%s: sender %d offset %v; sync must cancel skew %v exactly", name, i, off, skews[i])
			}
		}
	}

	// Negative control: without sync the skews go uncorrected and the
	// merged stream must NOT match — otherwise the soak proves nothing.
	tf, got := replayTransport(t, cs, ccfg, mapper, transportOpts{
		n: len(skews), window: units.Duration(units.Millisecond), skew: skewFn, noSync: true,
	})
	if reflect.DeepEqual(got.events, global.events) {
		t.Error("negative control: unsynced skewed fleet still matched the oracle; the soak cannot detect clock error")
	}
	for i, s := range tf.senders {
		if _, ok := s.Offset(); ok {
			t.Errorf("negative control: sender %d acquired an offset with sync black-holed", i)
		}
	}

	// Events may shift but federation must still function end to end.
	if len(got.events) == 0 {
		t.Error("negative control: no events at all; transport broke rather than degraded")
	}
}
