package agg

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"planck/internal/core"
	"planck/internal/units"
)

// mergeModel is the specification oracle for EventMerger: the same
// semantics written in the most obvious way — an unordered slice that
// is fully re-sorted on every advance, and a map of per-link emission
// anchors. The fuzz target drives both implementations with the same
// operation sequence and requires identical emissions and counters.
type mergeModel struct {
	cooldown  units.Duration
	pending   []pendingEvent
	emitted   map[LinkKey]units.Time
	watermark units.Time
	log       []string
	nEmit     int64
	nDedup    int64
	nLate     int64
}

func newMergeModel(cooldown units.Duration) *mergeModel {
	return &mergeModel{cooldown: cooldown, emitted: map[LinkKey]units.Time{}}
}

func (m *mergeModel) offer(link LinkKey, v VantageID, seq uint64, t units.Time) bool {
	if t < m.watermark {
		m.nLate++
		return false
	}
	m.pending = append(m.pending, pendingEvent{
		link: link, vantage: v, seq: seq,
		ev: core.CongestionEvent{Time: t, Port: int(link.Port), Vantage: int(v)},
	})
	return true
}

func (m *mergeModel) emitUpTo(t units.Time) {
	sort.Slice(m.pending, func(i, j int) bool { return m.pending[i].before(&m.pending[j]) })
	i := 0
	for ; i < len(m.pending) && m.pending[i].ev.Time <= t; i++ {
		pe := m.pending[i]
		if last, ok := m.emitted[pe.link]; ok && pe.ev.Time.Sub(last) < m.cooldown {
			m.nDedup++
			continue
		}
		m.emitted[pe.link] = pe.ev.Time
		m.nEmit++
		m.log = append(m.log, renderMerged(pe.link, pe.vantage, pe.seq, pe.ev.Time))
	}
	m.pending = m.pending[i:]
}

func (m *mergeModel) advanceTo(t units.Time) {
	if t > m.watermark {
		m.watermark = t
	}
	m.emitUpTo(m.watermark)
}

func (m *mergeModel) flush() {
	for _, pe := range m.pending {
		if pe.ev.Time > m.watermark {
			m.watermark = pe.ev.Time
		}
	}
	m.emitUpTo(m.watermark)
}

func renderMerged(link LinkKey, v VantageID, seq uint64, t units.Time) string {
	return fmt.Sprintf("t=%d sw=%d port=%d v=%d seq=%d", t, link.Switch, link.Port, v, seq)
}

// FuzzAggregateMerge decodes the fuzz input into a sequence of
// Offer/AdvanceTo/Flush operations — out-of-order arrivals, duplicate
// candidates from overlapping vantages, epoch/time skew, late events —
// and checks EventMerger's emissions and counters against the
// specification model, operation by operation.
func FuzzAggregateMerge(f *testing.F) {
	// Seeds: ties at one instant across links and vantages; spacing at
	// exactly the cooldown; a late arrival behind the watermark; heavy
	// duplication on one link; interleaved advances; a flush tail.
	f.Add([]byte{0, 10, 0, 0, 0, 10, 1, 1, 0, 10, 2, 0, 2, 10})
	f.Add([]byte{0, 10, 0, 0, 0, 110, 0, 0, 2, 120, 0, 5, 0, 0})
	f.Add([]byte{0, 50, 0, 0, 2, 50, 0, 20, 0, 0, 3})
	f.Add([]byte{0, 30, 1, 0, 0, 30, 1, 1, 0, 30, 1, 2, 0, 31, 1, 3, 2, 200, 3})
	f.Add([]byte{0, 5, 0, 0, 2, 5, 0, 4, 0, 1, 0, 9, 0, 2, 2, 9, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		const cooldown = 100 * units.Microsecond

		var got []string
		m := NewEventMerger(cooldown, func(ev core.CongestionEvent) {
			got = append(got, renderMerged(
				LinkKey{Switch: int32(ev.Util), Port: int32(ev.Port)},
				VantageID(ev.Vantage), ev.Epoch, ev.Time))
		})
		model := newMergeModel(cooldown)

		var seqs [4]uint64
		base := units.Time(0)
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		for i < len(data) {
			switch op := next() % 4; op {
			case 0, 1: // Offer: time delta, link, vantage
				// Timestamps wander forward and backward around a drifting
				// base, producing out-of-order and late arrivals.
				d := units.Duration(int64(next())-96) * units.Microsecond
				base = base.Add(d)
				lb := next()
				link := LinkKey{Switch: int32(lb % 3), Port: int32((lb / 3) % 2)}
				v := VantageID(next() % 4)
				seqs[v]++
				ev := core.CongestionEvent{
					Time: base, Port: int(link.Port),
					Util: units.Rate(link.Switch), Vantage: int(v), Epoch: seqs[v],
				}
				okGot := m.Offer(link, v, seqs[v], ev)
				okWant := model.offer(link, v, seqs[v], base)
				if okGot != okWant {
					t.Fatalf("op %d: Offer accepted=%v model=%v", i, okGot, okWant)
				}
			case 2: // AdvanceTo a point near the base time
				d := units.Duration(int64(next())-64) * units.Microsecond
				at := base.Add(d)
				m.AdvanceTo(at)
				model.advanceTo(at)
			case 3:
				m.Flush()
				model.flush()
			}
			if !reflect.DeepEqual(got, model.log) {
				t.Fatalf("op %d: emissions diverge:\n got %v\nwant %v", i, got, model.log)
			}
		}
		m.Flush()
		model.flush()
		if !reflect.DeepEqual(got, model.log) {
			t.Fatalf("final emissions diverge:\n got %v\nwant %v", got, model.log)
		}
		if m.Emitted != model.nEmit || m.Deduped != model.nDedup || m.Late != model.nLate {
			t.Fatalf("counters (emit=%d dedup=%d late=%d) != model (%d %d %d)",
				m.Emitted, m.Deduped, m.Late, model.nEmit, model.nDedup, model.nLate)
		}
		if m.Pending() != 0 {
			t.Fatalf("%d candidates still pending after Flush", m.Pending())
		}
	})
}

// TestEventMergerEdgeCases pins the exact boundary semantics the fuzz
// oracle can only reach probabilistically.
func TestEventMergerEdgeCases(t *testing.T) {
	const cd = 100 * units.Microsecond
	ev := func(tm units.Time) core.CongestionEvent { return core.CongestionEvent{Time: tm} }
	var emitted []units.Time
	m := NewEventMerger(cd, func(e core.CongestionEvent) { emitted = append(emitted, e.Time) })
	link := LinkKey{Switch: 1, Port: 2}

	// Sync-mode pattern: Offer then AdvanceTo(same t) emits immediately.
	m.Offer(link, 1, 1, ev(1000))
	m.AdvanceTo(1000)
	if len(emitted) != 1 {
		t.Fatalf("sync offer not emitted: %v", emitted)
	}
	// A second candidate at the same instant is accepted (t == watermark
	// is not late) and deduped at emission.
	if !m.Offer(link, 2, 1, ev(1000)) {
		t.Fatal("offer at watermark rejected as late")
	}
	m.AdvanceTo(1000)
	if m.Deduped != 1 {
		t.Fatalf("same-instant duplicate not deduped: %d", m.Deduped)
	}
	// Spacing strictly inside the cooldown is deduped...
	m.Offer(link, 1, 2, ev(1000+units.Time(cd)-1))
	m.AdvanceTo(1000 + units.Time(cd) - 1)
	if m.Deduped != 2 {
		t.Fatalf("inside-cooldown candidate not deduped: %d", m.Deduped)
	}
	// ...spacing exactly at the cooldown is emitted (matching the
	// collector's strict < comparison).
	m.Offer(link, 1, 3, ev(1000+units.Time(cd)))
	m.AdvanceTo(1000 + units.Time(cd))
	if len(emitted) != 2 {
		t.Fatalf("exact-cooldown candidate suppressed: %v", emitted)
	}
	// Behind the watermark is late.
	if m.Offer(link, 1, 4, ev(999)) {
		t.Fatal("late candidate accepted")
	}
	if m.Late != 1 {
		t.Fatalf("late counter %d", m.Late)
	}
	// Cross-link ordering at one instant: lower (switch, port) first,
	// and links dedup independently.
	var order []string
	m2 := NewEventMerger(cd, func(e core.CongestionEvent) {
		order = append(order, fmt.Sprintf("%d/%d", e.Util, e.Port))
	})
	a := LinkKey{Switch: 2, Port: 0}
	b := LinkKey{Switch: 1, Port: 1}
	m2.Offer(a, 1, 1, core.CongestionEvent{Time: 500, Util: 2, Port: 0})
	m2.Offer(b, 2, 1, core.CongestionEvent{Time: 500, Util: 1, Port: 1})
	m2.Flush()
	if !reflect.DeepEqual(order, []string{"1/1", "2/0"}) {
		t.Fatalf("cross-link order %v", order)
	}
	if m2.Emitted != 2 || m2.Deduped != 0 {
		t.Fatalf("independent links interfered: emit=%d dedup=%d", m2.Emitted, m2.Deduped)
	}
}
