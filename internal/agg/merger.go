package agg

import (
	"planck/internal/core"
	"planck/internal/units"
)

// LinkKey identifies one monitored egress link network-wide: the
// monitored switch's index and the egress port the congestion event
// fired for. Cooldown coherence is per link, exactly as it is per port
// inside a single collector.
type LinkKey struct {
	Switch int32
	Port   int32
}

// VantageID identifies one vantage collector within a fleet. IDs are
// 1-based (Plane.Join assigns them) so a zero Vantage on an event still
// reads as "not fleet-attributed".
type VantageID int32

// pendingEvent is one offered candidate waiting in the reorder buffer.
type pendingEvent struct {
	link    LinkKey
	vantage VantageID
	seq     uint64
	ev      core.CongestionEvent
}

// before is the merger's deterministic total order: time, then link
// (switch, port), then the offering vantage, then its offer sequence.
// The (vantage, seq) tail makes the order total even for same-time
// candidates from overlapping vantages, so emission order never depends
// on arrival interleaving.
func (a *pendingEvent) before(b *pendingEvent) bool {
	if a.ev.Time != b.ev.Time {
		return a.ev.Time < b.ev.Time
	}
	if a.link.Switch != b.link.Switch {
		return a.link.Switch < b.link.Switch
	}
	if a.link.Port != b.link.Port {
		return a.link.Port < b.link.Port
	}
	if a.vantage != b.vantage {
		return a.vantage < b.vantage
	}
	return a.seq < b.seq
}

// EventMerger is the cross-collector congestion-event merger: it
// accepts candidate events from many vantages in arbitrary arrival
// order, re-establishes one deterministic network-wide stream order
// behind a watermark, and owns the per-link cooldown that deduplicates
// candidates across overlapping vantages, epoch skew, and supervised
// collector restarts (the cooldown state lives here, outside any
// collector process, so it survives their crashes).
//
// Semantics, which the map-based oracle in merger_test.go mirrors:
//
//   - Offer buffers a candidate unless its time is already behind the
//     watermark, in which case it is counted late and dropped (its
//     information is stale: the congestion either persisted — producing
//     newer candidates — or passed).
//   - AdvanceTo(t) raises the watermark to t and emits every buffered
//     candidate with time ≤ t in the total order above.
//   - At emission, a candidate within Cooldown of the link's previous
//     emission is suppressed as a duplicate; otherwise it is emitted
//     and becomes the link's new cooldown anchor — the same arithmetic
//     core.Collector.checkCongestion applies per port.
//
// Not safe for concurrent use; callers drive it from one goroutine
// (the simulation engine goroutine, in the lab).
type EventMerger struct {
	cooldown units.Duration
	out      func(ev core.CongestionEvent)

	heap      []pendingEvent
	emitted   map[LinkKey]units.Time
	watermark units.Time

	// Emitted counts events that cleared dedup and reached out;
	// Deduped counts candidates suppressed by the per-link cooldown;
	// Late counts candidates dropped at Offer for arriving behind the
	// watermark.
	Emitted int64
	Deduped int64
	Late    int64
}

// NewEventMerger builds a merger with the given per-link cooldown
// (0 takes the collector default, 250 µs) delivering merged events to
// out.
func NewEventMerger(cooldown units.Duration, out func(ev core.CongestionEvent)) *EventMerger {
	if cooldown <= 0 {
		cooldown = 250 * units.Microsecond
	}
	return &EventMerger{
		cooldown: cooldown,
		out:      out,
		emitted:  make(map[LinkKey]units.Time),
	}
}

// Offer buffers one candidate event from vantage v (seq is v's private
// offer counter, strictly increasing per vantage). Returns false when
// the candidate arrived behind the watermark and was dropped late.
func (m *EventMerger) Offer(link LinkKey, v VantageID, seq uint64, ev core.CongestionEvent) bool {
	if ev.Time < m.watermark {
		m.Late++
		return false
	}
	m.push(pendingEvent{link: link, vantage: v, seq: seq, ev: ev})
	return true
}

// AdvanceTo raises the watermark to t (never lowers it) and emits every
// buffered candidate with time ≤ the watermark, in stream order.
func (m *EventMerger) AdvanceTo(t units.Time) {
	if t > m.watermark {
		m.watermark = t
	}
	for len(m.heap) > 0 && m.heap[0].ev.Time <= m.watermark {
		m.emit(m.pop())
	}
}

// Flush drains the buffer completely, advancing the watermark past the
// newest buffered candidate. Call at end of run.
func (m *EventMerger) Flush() {
	for len(m.heap) > 0 {
		pe := m.pop()
		if pe.ev.Time > m.watermark {
			m.watermark = pe.ev.Time
		}
		m.emit(pe)
	}
}

func (m *EventMerger) emit(pe pendingEvent) {
	if last, ok := m.emitted[pe.link]; ok && pe.ev.Time.Sub(last) < m.cooldown {
		m.Deduped++
		return
	}
	m.emitted[pe.link] = pe.ev.Time
	m.Emitted++
	if m.out != nil {
		m.out(pe.ev)
	}
}

// Suppressed reports whether a candidate for link at time t would be
// suppressed by the link's current cooldown anchor. The aggregation
// plane uses it as an allocation-free pre-check before building an
// event's flow annotations; with buffered candidates still pending the
// answer can be a false negative, which the authoritative dedup at
// emission then catches.
func (m *EventMerger) Suppressed(link LinkKey, t units.Time) bool {
	last, ok := m.emitted[link]
	return ok && t.Sub(last) < m.cooldown
}

// LastEmitted returns the link's cooldown anchor: the time of its most
// recently emitted event.
func (m *EventMerger) LastEmitted(link LinkKey) (units.Time, bool) {
	t, ok := m.emitted[link]
	return t, ok
}

// Watermark returns the current emission watermark.
func (m *EventMerger) Watermark() units.Time { return m.watermark }

// Pending returns the number of buffered candidates.
func (m *EventMerger) Pending() int { return len(m.heap) }

// push and pop maintain a binary min-heap ordered by before. Manual
// rather than container/heap so Offer never boxes a candidate into an
// interface (the merge path stays allocation-free in steady state).
func (m *EventMerger) push(pe pendingEvent) {
	m.heap = append(m.heap, pe)
	i := len(m.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !m.heap[i].before(&m.heap[p]) {
			break
		}
		m.heap[i], m.heap[p] = m.heap[p], m.heap[i]
		i = p
	}
}

func (m *EventMerger) pop() pendingEvent {
	top := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap[last] = pendingEvent{} // release the event's Flows slice
	m.heap = m.heap[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(m.heap) && m.heap[l].before(&m.heap[small]) {
			small = l
		}
		if r < len(m.heap) && m.heap[r].before(&m.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		m.heap[i], m.heap[small] = m.heap[small], m.heap[i]
		i = small
	}
	return top
}
